package expt

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"
)

// TestWireFrameRoundTrip drives the codec over every frame shape:
// small incompressible bodies, large compressible ones (which must
// come back byte-identical through the DEFLATE path), and back-to-back
// frames on one stream.
func TestWireFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := newFrameEnc(&buf)

	small := []byte("hello")
	big := bytes.Repeat([]byte("fault-tolerant mixed criticality "), 64)
	words := []uint64{0, 0, 7, 7, 7, 1 << 62, 0, 42}

	enc.begin(frameHello)
	enc.lenBytes(small)
	if err := enc.flush(); err != nil {
		t.Fatal(err)
	}
	enc.begin(frameReady)
	enc.uvarint(wireV1)
	enc.lenBytes(big)
	if err := enc.flush(); err != nil {
		t.Fatal(err)
	}
	enc.begin(frameResult)
	enc.uvarint(9)
	enc.appendResultWords(words)
	if err := enc.flush(); err != nil {
		t.Fatal(err)
	}
	enc.begin(frameDone)
	if err := enc.flush(); err != nil {
		t.Fatal(err)
	}
	if enc.frames != 4 || enc.bytesOut != uint64(buf.Len()) {
		t.Fatalf("encoder accounting: %d frames %d bytes, want 4 frames %d bytes", enc.frames, enc.bytesOut, buf.Len())
	}

	dec := newFrameDec(bufio.NewReader(bytes.NewReader(buf.Bytes())))
	ft, body, err := dec.next()
	if err != nil || ft != frameHello {
		t.Fatalf("frame 1: type %#x err %v", ft, err)
	}
	r := wireBuf{b: body}
	if got, err := r.lenBytes(); err != nil || !bytes.Equal(got, small) {
		t.Fatalf("hello body: %q err %v", got, err)
	}
	ft, body, err = dec.next()
	if err != nil || ft != frameReady {
		t.Fatalf("frame 2: type %#x err %v", ft, err)
	}
	r = wireBuf{b: body}
	if v, err := r.uvarint(); err != nil || v != wireV1 {
		t.Fatalf("ready version: %d err %v", v, err)
	}
	if got, err := r.lenBytes(); err != nil || !bytes.Equal(got, big) {
		t.Fatalf("ready body did not round-trip through compression (len %d, err %v)", len(got), err)
	}
	ft, body, err = dec.next()
	if err != nil || ft != frameResult {
		t.Fatalf("frame 3: type %#x err %v", ft, err)
	}
	r = wireBuf{b: body}
	if id, err := r.intField(); err != nil || id != 9 {
		t.Fatalf("result id: %d err %v", id, err)
	}
	var got []uint64
	if err := decodeResultWords(&r, len(words), func(j int, w uint64) { got = append(got, w) }); err != nil {
		t.Fatal(err)
	}
	for i := range words {
		if got[i] != words[i] {
			t.Fatalf("word %d: %d, want %d", i, got[i], words[i])
		}
	}
	if ft, body, err = dec.next(); err != nil || ft != frameDone || len(body) != 0 {
		t.Fatalf("frame 4: type %#x body %d err %v", ft, len(body), err)
	}
	if dec.frames != 4 || dec.bytesIn != uint64(buf.Len()) {
		t.Fatalf("decoder accounting: %d frames %d bytes, want 4 frames %d bytes", dec.frames, dec.bytesIn, buf.Len())
	}
}

// TestWireDecoderRejects pins the decoder's failure modes: every
// malformed stream must error, never panic, and a forged length prefix
// must not commit the claimed allocation.
func TestWireDecoderRejects(t *testing.T) {
	frame := func(payload []byte) []byte {
		b := binary.AppendUvarint(nil, uint64(len(payload)))
		return append(b, payload...)
	}
	cases := map[string][]byte{
		"empty payload":      frame(nil),
		"one-byte payload":   frame([]byte{frameDone}),
		"oversized length":   binary.AppendUvarint(nil, wireMaxFrame+1),
		"forged 16MiB claim": binary.AppendUvarint(nil, wireMaxFrame), // then EOF
		"truncated length":   {0x85},
		"truncated payload":  frame([]byte{frameLease, 0, 1, 2})[:3],
		"unknown flags":      frame([]byte{frameLease, 0x80}),
		"corrupt deflate":    frame([]byte{frameHello, flagDeflate, 0xde, 0xad, 0xbe, 0xef}),
	}
	for name, in := range cases {
		dec := newFrameDec(bufio.NewReader(bytes.NewReader(in)))
		if _, _, err := dec.next(); err == nil {
			t.Errorf("%s: decoder accepted malformed input", name)
		}
		if cap(dec.payload) > 2*wireFillChunk {
			t.Errorf("%s: decoder committed %d bytes for a hostile length", name, cap(dec.payload))
		}
	}
}

// TestWireResultCountMismatch pins the count validation that replaces
// the dropped (ui, lo, hi) echo: a result whose word count disagrees
// with the granted lease errors out.
func TestWireResultCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	enc := newFrameEnc(&buf)
	enc.begin(frameResult)
	enc.uvarint(3)
	enc.appendResultWords([]uint64{1, 2, 3})
	if err := enc.flush(); err != nil {
		t.Fatal(err)
	}
	dec := newFrameDec(bufio.NewReader(bytes.NewReader(buf.Bytes())))
	_, body, err := dec.next()
	if err != nil {
		t.Fatal(err)
	}
	r := wireBuf{b: body}
	if _, err := r.intField(); err != nil {
		t.Fatal(err)
	}
	if err := decodeResultWords(&r, 5, func(int, uint64) {}); err == nil {
		t.Fatal("decodeResultWords accepted 3 words against a 5-set lease")
	}
}

// marginalBytesPerLease isolates the wire cost of one lease round-trip
// for a protocol by differencing two runs of the same campaign at
// different lease sizes: the handshake (per-run) and the verdict words
// (per-set, constant across runs) cancel, leaving the per-lease
// framing — the quantity the codec actually changes.
func marginalBytesPerLease(t *testing.T, cfg CampaignConfig, proto WireProto, procs int) float64 {
	t.Helper()
	bytesAt := func(leaseSets int) (uint64, int) {
		_, rep, err := DistCampaign(cfg, PipeWorkers(procs), DistOptions{Proto: proto, LeaseSets: leaseSets})
		if err != nil {
			t.Fatalf("%s leaseSets=%d: %v", proto, leaseSets, err)
		}
		return rep.BytesIn + rep.BytesOut, rep.Leases
	}
	bSmall, lSmall := bytesAt(1)
	bBig, lBig := bytesAt(cfg.SetsPerPoint)
	if lSmall <= lBig {
		t.Fatalf("%s: lease counts %d vs %d cannot difference", proto, lSmall, lBig)
	}
	return float64(bSmall-bBig) / float64(lSmall-lBig)
}

// TestDistCampaignBinaryJSONDifferential is the codec's differential
// contract: across lease sizes × worker counts, the binary and legacy
// JSON protocols merge to the same bytes as the single-process run —
// and the binary protocol spends at least 5x fewer wire bytes per
// lease round-trip doing it.
func TestDistCampaignBinaryJSONDifferential(t *testing.T) {
	cfg := smallCampaign()
	want, err := Campaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantB := resultBytes(t, want)
	for _, procs := range []int{1, 3} {
		for _, leaseSets := range []int{1, 7, 50} {
			for _, proto := range []WireProto{WireJSON, WireBinary} {
				got, _, err := DistCampaign(cfg, PipeWorkers(procs), DistOptions{Proto: proto, LeaseSets: leaseSets})
				if err != nil {
					t.Fatalf("%s procs=%d leaseSets=%d: %v", proto, procs, leaseSets, err)
				}
				if gotB := resultBytes(t, got); string(gotB) != string(wantB) {
					t.Fatalf("%s procs=%d leaseSets=%d diverged from single-process bytes", proto, procs, leaseSets)
				}
			}
		}
	}
	jsonPer := marginalBytesPerLease(t, cfg, WireJSON, 1)
	binPer := marginalBytesPerLease(t, cfg, WireBinary, 1)
	if binPer*5 > jsonPer {
		t.Errorf("binary spends %.1f bytes per lease round-trip vs JSON's %.1f — less than the 5x reduction target", binPer, jsonPer)
	}
}

// TestDistCampaignBinaryJSONWorkerLoss runs the kill-a-worker axis of
// the differential: both protocols must survive losing a worker
// mid-run and still merge identically.
func TestDistCampaignBinaryJSONWorkerLoss(t *testing.T) {
	cfg := smallCampaign()
	want, err := Campaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantB := resultBytes(t, want)
	for _, proto := range []WireProto{WireJSON, WireBinary} {
		conns := PipeWorkers(1)
		c, w := net.Pipe()
		doomed := &killAfter{Conn: w}
		doomed.writes.Store(3) // ready + two results, then dead
		go func() {
			defer w.Close()
			ServeWorker(doomed)
		}()
		conns = append(conns, c)
		got, rep, err := DistCampaign(cfg, conns, DistOptions{Proto: proto, LeaseSets: 5})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if gotB := resultBytes(t, got); string(gotB) != string(wantB) {
			t.Fatalf("%s: result after worker loss diverged from single-process bytes", proto)
		}
		if rep.WorkerFailures != 1 || rep.Reassigned < 1 {
			t.Fatalf("%s: report %+v: want 1 failure and >= 1 reassignment", proto, rep)
		}
	}
}

// TestServeWorkerRejectsBadPreamble pins the worker's handshake guard:
// a binary-looking stream with a version the worker cannot accept, or
// garbage after the magic, errors out instead of wedging.
func TestServeWorkerRejectsBadPreamble(t *testing.T) {
	err := ServeWorker(struct {
		io.Reader
		io.Writer
	}{strings.NewReader("\xf7\x00"), io.Discard})
	if err == nil {
		t.Fatal("worker accepted wire version 0")
	}
}

// TestLeaseSizer pins the adaptive sizing policy: no observations or
// no target gives the fixed base; observed rates steer toward the
// target latency; the min/max clamps hold at the extremes.
func TestLeaseSizer(t *testing.T) {
	s := leaseSizer{base: 64, min: 4, max: 512, target: 1e6} // 1ms target
	if got := s.size(); got != 64 {
		t.Fatalf("unobserved sizer granted %d, want base 64", got)
	}
	s.observe(100, 1e6) // 10µs/set steady → 100 sets per ms
	if got := s.size(); got != 100 {
		t.Fatalf("sizer granted %d, want 100 at 10µs/set", got)
	}
	for i := 0; i < 20; i++ {
		s.observe(1, 1e6) // 1ms/set: a very slow worker
	}
	if got := s.size(); got != s.min {
		t.Fatalf("sizer granted %d for a slow worker, want the min clamp %d", got, s.min)
	}
	for i := 0; i < 40; i++ {
		s.observe(1000, 1e3) // 1ns/set: impossibly fast
	}
	if got := s.size(); got != s.max {
		t.Fatalf("sizer granted %d for a fast worker, want the max clamp %d", got, s.max)
	}
	fixed := leaseSizer{base: 16}
	fixed.observe(100, 1e6)
	if got := fixed.size(); got != 16 {
		t.Fatalf("target-less sizer granted %d, want the fixed base 16", got)
	}
}

// FuzzDistFrame feeds arbitrary bytes to the frame decoder and the
// result-word decoder: they must reject malformed input with an error
// — never panic, never commit an allocation sized by a forged length.
func FuzzDistFrame(f *testing.F) {
	var seed bytes.Buffer
	enc := newFrameEnc(&seed)
	enc.begin(frameLease)
	enc.uvarint(3)
	enc.uvarint(1)
	enc.uvarint(0)
	enc.uvarint(64)
	enc.flush()
	enc.begin(frameResult)
	enc.uvarint(3)
	enc.appendResultWords([]uint64{5, 5, 0, 1 << 60})
	enc.flush()
	enc.begin(frameReady)
	enc.uvarint(1)
	enc.lenBytes(bytes.Repeat([]byte("{}"), 300)) // compressible: exercises deflate
	enc.flush()
	f.Add(seed.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(binary.AppendUvarint(nil, wireMaxFrame))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := newFrameDec(bufio.NewReader(bytes.NewReader(data)))
		for {
			ft, body, err := dec.next()
			if err != nil {
				break
			}
			if cap(dec.payload) > len(data)+2*wireFillChunk {
				t.Fatalf("decoder committed %d bytes from a %d-byte input", cap(dec.payload), len(data))
			}
			r := wireBuf{b: body}
			switch ft {
			case frameLease, frameResult:
				r.leaseHeader()
			case frameReady, frameHello, frameError:
				r.uvarint()
				r.lenBytes()
			}
			// Result-word decoding against a small fixed grant: hostile
			// counts must error on the count check, not allocate.
			r = wireBuf{b: body}
			if _, err := r.intField(); err == nil {
				decodeResultWords(&r, 8, func(int, uint64) {})
			}
		}
	})
}
