package expt

import "repro/internal/obsv"

// exptMetrics is the package's instrument bundle (see internal/obsv):
// the shared worker pool's dispatch volume, chunk claims and per-chunk
// wall time (chunk throughput = chunks / Σ chunk_ns), the live worker
// occupancy gauge, the stealing scheduler's successful steal count
// (high steals = skewed per-index cost; zero under FTMC_WORKERS=1),
// and the Fig. 3 engine's per-data-point latency —
// enough to tell "workers starved" (occupancy low, chunk_ns flat) from
// "points got slower" (point_ns up) without a profiler. Fields are nil
// while metrics are disabled; the per-item hot path is untouched
// either way (instruments fire per chunk, not per index).
type exptMetrics struct {
	poolDispatches *obsv.Counter
	poolChunks     *obsv.Counter
	poolItems      *obsv.Counter
	poolActive     *obsv.Gauge
	poolChunkNs    *obsv.Histogram
	poolSteals     *obsv.Counter
	workersBadEnv  *obsv.Counter
	fig3Points     *obsv.Counter
	fig3PointNs    *obsv.Histogram
	// Campaign-engine reuse telemetry: sets drawn once, configurations
	// served per draw (their ratio is the draw amortization), baseline
	// short-circuits, and the line-8 memo's hit/search split (hits are
	// whole bisected schedulability scans skipped).
	campaignPoints        *obsv.Counter
	campaignPointNs       *obsv.Histogram
	campaignSets          *obsv.Counter
	campaignConfigs       *obsv.Counter
	campaignBaselineHits  *obsv.Counter
	campaignSchedMemoHits *obsv.Counter
	campaignSchedSearches *obsv.Counter
	// campaignBatchedProbes counts kill-mode eq. (5) verdict probes that
	// were deferred into per-chunk KillingBatch calls instead of running
	// through the scalar cache path.
	campaignBatchedProbes *obsv.Counter
	// Distributed-campaign telemetry, recorded at the coordinator:
	// leases granted (including regrants), leases requeued after a
	// worker failure or deadline, workers lost, and per-lease
	// round-trip latency (grant to merged result).
	distLeases         *obsv.Counter
	distReassigned     *obsv.Counter
	distWorkerFailures *obsv.Counter
	distLeaseNs        *obsv.Histogram
	// Wire-level telemetry of the lease data plane: bytes and frames in
	// each direction (both protocols; JSON counts messages as 0 frames),
	// the in-flight lease gauge across all workers (window utilization),
	// the granted lease sizes (the adaptive sizer's trajectory), and
	// sets restored from a checkpoint journal instead of re-evaluated.
	distBytesOut     *obsv.Counter
	distBytesIn      *obsv.Counter
	distFramesOut    *obsv.Counter
	distFramesIn     *obsv.Counter
	distInflight     *obsv.Gauge
	distLeaseSets    *obsv.Histogram
	distReplayedSets *obsv.Counter
}

var exptView = obsv.NewView(func(r *obsv.Registry) *exptMetrics {
	return &exptMetrics{
		poolDispatches:        r.Counter("expt.pool.dispatches"),
		poolChunks:            r.Counter("expt.pool.chunks"),
		poolItems:             r.Counter("expt.pool.items"),
		poolActive:            r.Gauge("expt.pool.active_workers"),
		poolChunkNs:           r.Histogram("expt.pool.chunk_ns"),
		poolSteals:            r.Counter("expt.pool.steals"),
		workersBadEnv:         r.Counter("expt.workers.env_invalid"),
		fig3Points:            r.Counter("expt.fig3.points"),
		fig3PointNs:           r.Histogram("expt.fig3.point_ns"),
		campaignPoints:        r.Counter("expt.campaign.points"),
		campaignPointNs:       r.Histogram("expt.campaign.point_ns"),
		campaignSets:          r.Counter("expt.campaign.sets"),
		campaignConfigs:       r.Counter("expt.campaign.configs"),
		campaignBaselineHits:  r.Counter("expt.campaign.baseline_hits"),
		campaignSchedMemoHits: r.Counter("expt.campaign.sched_memo_hits"),
		campaignSchedSearches: r.Counter("expt.campaign.sched_searches"),
		campaignBatchedProbes: r.Counter("expt.campaign.batched_probes"),
		distLeases:            r.Counter("expt.dist.leases"),
		distReassigned:        r.Counter("expt.dist.reassigned"),
		distWorkerFailures:    r.Counter("expt.dist.worker_failures"),
		distLeaseNs:           r.Histogram("expt.dist.lease_ns"),
		distBytesOut:          r.Counter("expt.dist.bytes_out"),
		distBytesIn:           r.Counter("expt.dist.bytes_in"),
		distFramesOut:         r.Counter("expt.dist.frames_out"),
		distFramesIn:          r.Counter("expt.dist.frames_in"),
		distInflight:          r.Gauge("expt.dist.inflight_leases"),
		distLeaseSets:         r.Histogram("expt.dist.lease_sets"),
		distReplayedSets:      r.Counter("expt.dist.replayed_sets"),
	}
})
