package expt

import "repro/internal/obsv"

// exptMetrics is the package's instrument bundle (see internal/obsv):
// the shared worker pool's dispatch volume, chunk claims and per-chunk
// wall time (chunk throughput = chunks / Σ chunk_ns), the live worker
// occupancy gauge, and the Fig. 3 engine's per-data-point latency —
// enough to tell "workers starved" (occupancy low, chunk_ns flat) from
// "points got slower" (point_ns up) without a profiler. Fields are nil
// while metrics are disabled; the per-item hot path is untouched
// either way (instruments fire per chunk, not per index).
type exptMetrics struct {
	poolDispatches *obsv.Counter
	poolChunks     *obsv.Counter
	poolItems      *obsv.Counter
	poolActive     *obsv.Gauge
	poolChunkNs    *obsv.Histogram
	fig3Points     *obsv.Counter
	fig3PointNs    *obsv.Histogram
}

var exptView = obsv.NewView(func(r *obsv.Registry) *exptMetrics {
	return &exptMetrics{
		poolDispatches: r.Counter("expt.pool.dispatches"),
		poolChunks:     r.Counter("expt.pool.chunks"),
		poolItems:      r.Counter("expt.pool.items"),
		poolActive:     r.Gauge("expt.pool.active_workers"),
		poolChunkNs:    r.Histogram("expt.pool.chunk_ns"),
		fig3Points:     r.Counter("expt.fig3.points"),
		fig3PointNs:    r.Histogram("expt.fig3.point_ns"),
	}
})
