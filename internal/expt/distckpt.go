package expt

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"sync"
)

// This file is the campaign checkpoint journal: a schema-versioned,
// append-only record of completed leases that lets a coordinator
// restart resume a long campaign instead of re-running it. The format
// is JSON lines — one header, then one record per completed lease:
//
//	{"schema":"ftmc/dist-ckpt/v1","config":"<fnv1a-64 of config JSON>","utils":U,"sets":S,"ncfg":C}
//	{"ui":0,"lo":0,"hi":64,"v":[0,3,...]}
//	...
//
// A record's v holds the lease's packed verdict words exactly as the
// worker computed them (the distMsg.V encoding), so replay merges the
// same bytes a live result would have — restart cannot perturb the
// merged report. The config hash pins the journal to one campaign: a
// journal written for a different configuration is rejected rather
// than silently replayed into the wrong grid.
//
// Appends go straight to the file descriptor (no userspace buffering),
// so a coordinator crash loses at most the record being written when
// it died. A torn final line — the signature of exactly that crash —
// is tolerated on load: the tail is truncated and its lease simply
// runs again. Torn or invalid JSON anywhere else is corruption and
// errors out.

const ckptSchema = "ftmc/dist-ckpt/v1"

// ckptHeader is the journal's first line.
type ckptHeader struct {
	Schema string `json:"schema"`
	Config string `json:"config"`
	Utils  int    `json:"utils"`
	Sets   int    `json:"sets"`
	NCfg   int    `json:"ncfg"`
}

// ckptRecord is one completed lease: packed verdict words for sets
// [Lo, Hi) of utilization point UI.
type ckptRecord struct {
	UI int      `json:"ui"`
	Lo int      `json:"lo"`
	Hi int      `json:"hi"`
	V  []uint64 `json:"v"`
}

// ckptConfigHash fingerprints the campaign configuration the journal
// belongs to: FNV-1a 64 over the canonical (json.Marshal) config bytes.
func ckptConfigHash(cfgJSON []byte) string {
	h := fnv.New64a()
	h.Write(cfgJSON)
	return fmt.Sprintf("%016x", h.Sum64())
}

// distJournal appends completed-lease records to the checkpoint file.
// A nil journal is valid and appends nowhere — the no-checkpoint path.
type distJournal struct {
	mu         sync.Mutex
	f          *os.File
	buf        []byte // marshal scratch, reused across appends
	appended   int
	crashAfter int // fault injection: exit(3) after this many appends
}

// openDistJournal opens (creating if absent) the journal at path,
// validates its header against the campaign, and returns the replayed
// records of every completed lease it holds. The file is left
// positioned (and truncated) at the end of its last intact line, ready
// for appends.
func openDistJournal(path string, cfgJSON []byte, cfg *CampaignConfig, nCfg int) (*distJournal, []ckptRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	hdr := ckptHeader{
		Schema: ckptSchema,
		Config: ckptConfigHash(cfgJSON),
		Utils:  len(cfg.Utils),
		Sets:   cfg.SetsPerPoint,
		NCfg:   nCfg,
	}
	j := &distJournal{f: f}
	records, validOff, err := loadDistJournal(f, hdr, cfg)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if validOff == 0 {
		// Fresh journal: write the header line.
		line, err := json.Marshal(hdr)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.Write(append(line, '\n')); err != nil {
			f.Close()
			return nil, nil, err
		}
		return j, nil, nil
	}
	// Drop any torn tail before appending, or the next record would
	// concatenate onto the partial line and corrupt the journal.
	if err := f.Truncate(validOff); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(validOff, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, records, nil
}

// loadDistJournal reads and validates the journal, returning the intact
// records and the byte offset of the end of the last intact line.
func loadDistJournal(f *os.File, want ckptHeader, cfg *CampaignConfig) ([]ckptRecord, int64, error) {
	r := bufio.NewReader(f)
	var records []ckptRecord
	var off int64
	for lineNo := 0; ; lineNo++ {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			if len(bytes.TrimSpace(line)) != 0 && lineNo == 0 {
				return nil, 0, fmt.Errorf("expt: checkpoint %s: torn header", f.Name())
			}
			// A torn (newline-less) final record is the crash signature;
			// drop it and let the lease run again.
			return records, off, nil
		}
		if err != nil {
			return nil, 0, err
		}
		if lineNo == 0 {
			var hdr ckptHeader
			if err := json.Unmarshal(line, &hdr); err != nil {
				return nil, 0, fmt.Errorf("expt: checkpoint %s: corrupt header: %w", f.Name(), err)
			}
			if hdr.Schema != want.Schema {
				return nil, 0, fmt.Errorf("expt: checkpoint %s: schema %q, want %q", f.Name(), hdr.Schema, want.Schema)
			}
			if hdr != want {
				return nil, 0, fmt.Errorf(
					"expt: checkpoint %s belongs to a different campaign (config %s grid %dx%dx%d, want %s grid %dx%dx%d)",
					f.Name(), hdr.Config, hdr.Utils, hdr.Sets, hdr.NCfg, want.Config, want.Utils, want.Sets, want.NCfg)
			}
			off += int64(len(line))
			continue
		}
		var rec ckptRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, 0, fmt.Errorf("expt: checkpoint %s: corrupt record on line %d: %w", f.Name(), lineNo+1, err)
		}
		if rec.UI < 0 || rec.UI >= len(cfg.Utils) ||
			rec.Lo < 0 || rec.Lo >= rec.Hi || rec.Hi > cfg.SetsPerPoint ||
			len(rec.V) != rec.Hi-rec.Lo {
			return nil, 0, fmt.Errorf("expt: checkpoint %s: record on line %d outside the campaign grid", f.Name(), lineNo+1)
		}
		records = append(records, rec)
		off += int64(len(line))
	}
}

// append journals one completed lease. Nil-safe: the no-checkpoint
// path calls through a nil journal.
func (j *distJournal) append(l lease, words []uint64) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := ckptRecord{UI: l.ui, Lo: l.lo, Hi: l.hi, V: words}
	line, err := json.Marshal(&rec)
	if err != nil {
		return err
	}
	j.buf = append(append(j.buf[:0], line...), '\n')
	if _, err := j.f.Write(j.buf); err != nil {
		return fmt.Errorf("expt: checkpoint append: %w", err)
	}
	j.appended++
	if j.crashAfter > 0 && j.appended >= j.crashAfter {
		// Fault injection for the restart smoke test: die like a killed
		// coordinator would, after the record is safely in the file.
		os.Exit(3)
	}
	return nil
}

func (j *distJournal) Close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}

// remainingWork subtracts the journaled records from the campaign grid:
// it returns the uncovered intervals (the lease table's fresh spans, in
// grid order) and the number of sets the journal already covers.
// Records may overlap — two coordinator generations can journal the
// same lease across a crash — and the merge makes replay idempotent.
func remainingWork(cfg *CampaignConfig, records []ckptRecord) ([]spanWork, int) {
	perUI := make([][][2]int, len(cfg.Utils))
	for _, r := range records {
		perUI[r.UI] = append(perUI[r.UI], [2]int{r.Lo, r.Hi})
	}
	var fresh []spanWork
	replayed := 0
	for ui := range cfg.Utils {
		ivs := perUI[ui]
		sort.Slice(ivs, func(a, b int) bool { return ivs[a][0] < ivs[b][0] })
		at := 0
		for _, iv := range ivs {
			if iv[0] > at {
				fresh = append(fresh, spanWork{ui: ui, lo: at, hi: iv[0]})
			}
			if iv[1] > at {
				replayed += iv[1] - max(at, iv[0])
				at = iv[1]
			}
		}
		if at < cfg.SetsPerPoint {
			fresh = append(fresh, spanWork{ui: ui, lo: at, hi: cfg.SetsPerPoint})
		}
	}
	return fresh, replayed
}
