package expt

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// This file is the binary framing layer of the distributed campaign
// protocol (wire v1). The legacy line-delimited JSON protocol of
// dist.go remains fully supported — it is the differential reference
// the binary codec is tested against, the same role Fig3Ref and
// KillingPFHLONaive play for their fast paths — but the default data
// plane speaks frames:
//
//	stream   = preamble frame*
//	preamble = 0xF7 version            (coordinator → worker only)
//	frame    = uvarint(len(payload)) payload
//	payload  = type flags body
//
// The worker auto-detects the protocol from the first byte of the
// stream: 0xF7 opens binary, '{' opens the legacy JSON protocol (a
// JSON hello always starts with '{'), so one worker binary serves
// coordinators of either era. The preamble's version byte is the
// negotiation hook within the binary protocol: the worker answers
// ready with the highest version it speaks (≤ the offered one) and
// the coordinator continues at that version; a worker that predates
// frames entirely cannot parse the preamble and is driven with
// WireJSON instead — the operator-selected "negotiate down" path.
//
// Frame bodies are varint-packed (binary.Uvarint):
//
//	hello  : uvarint(len) json(CampaignConfig)
//	ready  : uvarint(version) uvarint(len) json(Manifest)
//	lease  : uvarint(id) uvarint(ui) uvarint(lo) uvarint(hi)
//	result : uvarint(id) uvarint(n) token*
//	token  : uvarint(delta ≠ 0) | 0x00 uvarint(zero-run length)
//	error  : uvarint(id) uvarint(len) bytes(message)
//	done   : empty
//
// A result's verdict words travel as a varint-delta bitmap:
// delta_i = w_i XOR w_{i-1} (w_{-1} = 0). Acceptance flips rarely
// along a lease's contiguous set range — most points are deep in the
// all-accept or all-reject regime — so most deltas are 0, and runs of
// zero deltas are elided into a single two-byte token (a literal zero
// never appears as a delta, which frees 0x00 as the run marker): a
// lease whose sets all agree costs two bytes of verdicts no matter how
// many sets it spans, versus the ~7 bytes per word the decimal JSON
// array costs.
// flags bit 0 marks a DEFLATE-compressed body (the length prefix
// covers the compressed bytes); the encoder applies it only when it
// actually shrinks the body, which in practice is the JSON-carrying
// handshake frames — the bitmap deltas are already dense. A result
// carries only its lease id: the coordinator's grant record supplies
// (ui, lo, hi), and the mandatory word count pins the result to the
// granted size, so echoing the range would spend bytes to say nothing.
//
// Every multi-byte read is bounds-checked and every length field is
// capped (wireMaxFrame, chunked frame fill) before memory is
// committed, so truncated, corrupt or adversarial-length inputs
// error out without panicking or over-allocating — the contract
// FuzzDistFrame exercises.

const (
	// wireMagic opens a binary-protocol stream; it cannot collide with
	// the legacy protocol, whose first byte is '{' (0x7B).
	wireMagic = 0xF7
	// wireV1 is the only frame version so far. The worker answers ready
	// with min(offered, wireV1), so a newer coordinator knows to stay
	// at this version's frame shapes.
	wireV1 = 1

	frameHello  = 0x01
	frameReady  = 0x02
	frameLease  = 0x03
	frameResult = 0x04
	frameError  = 0x05
	frameDone   = 0x06

	// flagDeflate marks a DEFLATE-compressed frame body.
	flagDeflate = 0x01

	// wireMaxFrame caps one frame's payload (and its decompressed
	// body): far above any real lease — a 10^6-set result is ~1 MiB
	// worst-case — but low enough that a corrupt length cannot commit
	// unbounded memory.
	wireMaxFrame = 16 << 20
	// wireFillChunk is the step the decoder grows a frame buffer by
	// while reading, so a forged length prefix on a truncated stream
	// over-allocates by at most one chunk instead of the full claim.
	wireFillChunk = 64 << 10
	// wireCompressMin is the smallest body the encoder tries DEFLATE
	// on; below it the header overhead dominates any win.
	wireCompressMin = 256
)

// errFrameTooBig rejects length fields beyond wireMaxFrame.
var errFrameTooBig = fmt.Errorf("expt: wire frame exceeds %d bytes", wireMaxFrame)

// flate state is pooled process-wide: a flate.Writer alone is several
// hundred kilobytes of window and huffman tables, far too heavy to
// build per connection for the handful of handshake-sized frames that
// ever cross the compression threshold.
var (
	flateWriterPool = sync.Pool{New: func() any {
		w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return w
	}}
	flateReaderPool = sync.Pool{New: func() any {
		return flate.NewReader(bytes.NewReader(nil))
	}}
)

// wireBufSize is the bufio buffer on each side of a wire connection:
// large enough to coalesce a window refill or a batch of results into
// one transport handoff, small enough to pool freely.
const wireBufSize = 32 << 10

// The bufio halves are pooled too — at 32 KiB each they are the bulk
// of a connection's setup bytes, and a campaign coordinator opens (and
// a worker binary serves) connections in sequence far more often than
// in parallel.
var (
	bufReaderPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, wireBufSize) }}
	bufWriterPool = sync.Pool{New: func() any { return bufio.NewWriterSize(io.Discard, wireBufSize) }}
)

// getBufReader leases a pooled 32 KiB bufio.Reader bound to r; return
// it with putBufReader once no goroutine can still be reading.
func getBufReader(r io.Reader) *bufio.Reader {
	br := bufReaderPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

func putBufReader(br *bufio.Reader) {
	br.Reset(nil)
	bufReaderPool.Put(br)
}

// getBufWriter leases a pooled 32 KiB bufio.Writer bound to w; return
// it with putBufWriter after the final Flush.
func getBufWriter(w io.Writer) *bufio.Writer {
	bw := bufWriterPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

func putBufWriter(bw *bufio.Writer) {
	bw.Reset(io.Discard)
	bufWriterPool.Put(bw)
}

// frameEnc encodes frames onto w through one reused buffer: a flush
// writes the length prefix and payload with a single Write, so a
// buffered or rendezvous transport (net.Pipe) sees one handoff per
// frame. The zero cost of reuse is the point: steady-state encoding
// allocates nothing.
type frameEnc struct {
	w        io.Writer
	buf      []byte // frame under construction: 4-byte len, type, flags, body
	cbuf     bytes.Buffer
	bytesOut uint64
	frames   uint64
}

func newFrameEnc(w io.Writer) *frameEnc {
	return &frameEnc{w: w, buf: make([]byte, 0, 512)}
}

// begin starts a frame of the given type; body writers append.
func (e *frameEnc) begin(t byte) {
	e.buf = append(e.buf[:0], 0, 0, 0, 0, t, 0)
}

func (e *frameEnc) uvarint(v uint64)  { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *frameEnc) bytes(b []byte)    { e.buf = append(e.buf, b...) }
func (e *frameEnc) lenBytes(b []byte) { e.uvarint(uint64(len(b))); e.bytes(b) }

// flush finishes the frame: compresses the body when that wins, stamps
// the varint length prefix into the tail of the 4-byte reservation and
// writes the frame in one call. A varint prefix costs one byte on the
// tiny frames that dominate lease traffic, where a fixed uint32 would
// be a third of the frame.
func (e *frameEnc) flush() error {
	body := e.buf[6:]
	if len(body) >= wireCompressMin {
		e.cbuf.Reset()
		fw := flateWriterPool.Get().(*flate.Writer)
		fw.Reset(&e.cbuf)
		if _, err := fw.Write(body); err == nil && fw.Close() == nil && e.cbuf.Len() < len(body) {
			e.buf = append(e.buf[:6], e.cbuf.Bytes()...)
			e.buf[5] |= flagDeflate
		}
		flateWriterPool.Put(fw)
	}
	payload := e.buf[4:]
	if len(payload) > wireMaxFrame {
		return errFrameTooBig
	}
	var pfx [4]byte // 16 MiB needs at most 4 varint bytes
	pn := binary.PutUvarint(pfx[:], uint64(len(payload)))
	start := 4 - pn
	copy(e.buf[start:], pfx[:pn])
	n, err := e.w.Write(e.buf[start:])
	e.bytesOut += uint64(n)
	e.frames++
	return err
}

// frameDec decodes frames from r into reused buffers. next returns the
// frame type and its (decompressed) body, valid until the following
// next call.
type frameDec struct {
	r       *bufio.Reader
	payload []byte
	dbuf    []byte // decompression target, reused
	bytesIn uint64
	frames  uint64
}

func newFrameDec(r *bufio.Reader) *frameDec { return &frameDec{r: r} }

// fill reads exactly n payload bytes into the reused buffer, growing
// it one wireFillChunk-sized read at a time: capacity is committed
// only after the stream actually delivered the previous chunk, so a
// forged length prefix on a truncated stream over-allocates by at
// most one chunk (plus append's doubling slack), never the full
// claimed size.
func (d *frameDec) fill(n int) ([]byte, error) {
	buf := d.payload[:0]
	for len(buf) < n {
		step := n - len(buf)
		if step > wireFillChunk {
			step = wireFillChunk
		}
		start := len(buf)
		for cap(buf) < start+step {
			buf = append(buf[:cap(buf)], 0)
		}
		buf = buf[:start+step]
		if _, err := io.ReadFull(d.r, buf[start:]); err != nil {
			d.payload = buf[:0]
			return nil, err
		}
	}
	d.payload = buf
	return buf, nil
}

// next reads one frame. Malformed input — short reads, oversized or
// undersized lengths, bad compression, unknown flags — returns an
// error; next never panics on hostile bytes.
func (d *frameDec) next() (t byte, body []byte, err error) {
	n64, err := binary.ReadUvarint(d.r)
	if err != nil {
		return 0, nil, err
	}
	if n64 > wireMaxFrame {
		return 0, nil, errFrameTooBig
	}
	n := int(n64)
	if n < 2 {
		return 0, nil, fmt.Errorf("expt: wire frame payload of %d bytes is below the 2-byte header", n)
	}
	payload, err := d.fill(n)
	if err != nil {
		return 0, nil, fmt.Errorf("expt: truncated wire frame: %w", err)
	}
	d.bytesIn += uint64(uvarintLen(n64)) + uint64(n)
	d.frames++
	t, flags, body := payload[0], payload[1], payload[2:]
	if flags&^flagDeflate != 0 {
		return 0, nil, fmt.Errorf("expt: unknown wire frame flags %#x", flags)
	}
	if flags&flagDeflate != 0 {
		if body, err = d.inflate(body); err != nil {
			return 0, nil, err
		}
	}
	return t, body, nil
}

// inflate decompresses a frame body into the reused dbuf, bounded by
// wireMaxFrame.
func (d *frameDec) inflate(body []byte) ([]byte, error) {
	fr := flateReaderPool.Get().(io.ReadCloser)
	defer flateReaderPool.Put(fr)
	if err := fr.(flate.Resetter).Reset(bytes.NewReader(body), nil); err != nil {
		return nil, err
	}
	d.dbuf = d.dbuf[:0]
	buf := d.dbuf
	if cap(buf) == 0 {
		buf = make([]byte, 0, 4096)
	}
	for {
		if len(buf) == cap(buf) {
			if len(buf) >= wireMaxFrame {
				return nil, errFrameTooBig
			}
			buf = append(buf, 0)[:len(buf)]
		}
		m, err := fr.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+m]
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("expt: corrupt compressed wire frame: %w", err)
		}
	}
	d.dbuf = buf
	return buf, nil
}

// wireBuf is a cursor over a frame body for varint-packed fields.
type wireBuf struct{ b []byte }

var errWireTruncated = errors.New("expt: truncated wire frame body")

func (r *wireBuf) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, errWireTruncated
	}
	r.b = r.b[n:]
	return v, nil
}

// intField reads a uvarint that must fit a non-negative int (grid
// indexes, lease ids).
func (r *wireBuf) intField() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(int(^uint(0)>>1)) {
		return 0, fmt.Errorf("expt: wire integer field %d overflows int", v)
	}
	return int(v), nil
}

// lenBytes reads a uvarint length and that many bytes, validating the
// length against what the body actually holds before slicing.
func (r *wireBuf) lenBytes() ([]byte, error) {
	n, err := r.intField()
	if err != nil {
		return nil, err
	}
	if n > len(r.b) {
		return nil, errWireTruncated
	}
	b := r.b[:n]
	r.b = r.b[n:]
	return b, nil
}

// leaseHeader is the (id, ui, lo, hi) prefix shared by lease and
// result frames.
func (r *wireBuf) leaseHeader() (id, ui, lo, hi int, err error) {
	if id, err = r.intField(); err != nil {
		return
	}
	if ui, err = r.intField(); err != nil {
		return
	}
	if lo, err = r.intField(); err != nil {
		return
	}
	hi, err = r.intField()
	return
}

// uvarintLen is the encoded size of v (for byte accounting).
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// appendResultWords appends the varint-delta bitmap of words to the
// open frame of e: non-zero deltas as plain uvarints, runs of zero
// deltas elided into a 0x00 marker plus run length.
func (e *frameEnc) appendResultWords(words []uint64) {
	e.uvarint(uint64(len(words)))
	var prev uint64
	zeros := uint64(0)
	flushZeros := func() {
		if zeros > 0 {
			e.buf = append(e.buf, 0)
			e.uvarint(zeros)
			zeros = 0
		}
	}
	for _, w := range words {
		d := w ^ prev
		prev = w
		if d == 0 {
			zeros++
			continue
		}
		flushZeros()
		e.uvarint(d)
	}
	flushZeros()
}

// decodeResultWords streams the n delta-decoded verdict words of a
// result body into emit(j, word). The caller fixes n from the lease it
// granted, so a hostile count can never size an allocation: the body
// must decode to exactly n words or the decode errors (run lengths are
// bounds-checked against the words still owed).
func decodeResultWords(r *wireBuf, n int, emit func(j int, w uint64)) error {
	cnt, err := r.uvarint()
	if err != nil {
		return err
	}
	if cnt != uint64(n) {
		return fmt.Errorf("expt: result carries %d words, want %d", cnt, n)
	}
	var prev uint64
	for j := 0; j < n; {
		delta, err := r.uvarint()
		if err != nil {
			return err
		}
		if delta == 0 {
			run, err := r.uvarint()
			if err != nil {
				return err
			}
			if run == 0 || run > uint64(n-j) {
				return fmt.Errorf("expt: zero-run of %d words with %d owed", run, n-j)
			}
			for k := uint64(0); k < run; k++ {
				emit(j, prev)
				j++
			}
			continue
		}
		prev ^= delta
		emit(j, prev)
		j++
	}
	if len(r.b) != 0 {
		return fmt.Errorf("expt: %d trailing bytes after result words", len(r.b))
	}
	return nil
}
