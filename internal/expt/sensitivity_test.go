package expt

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/criticality"
	"repro/internal/gen"
	"repro/internal/prob"
	"repro/internal/safety"
	"repro/internal/stats"
)

func TestDFSweepShape(t *testing.T) {
	dfs := []float64{1.5, 2, 4, 8, 16}
	points, err := DFSweep(criticality.LevelB, criticality.LevelD, 0.8, 1e-5, dfs, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(dfs) {
		t.Fatalf("points = %d", len(points))
	}
	// Larger df weakens eq. (12)'s degraded-mode term: acceptance is
	// non-decreasing (up to sampling identity — the same seeds are used
	// at each df, so the comparison is paired and exact).
	for i := 1; i < len(points); i++ {
		if points[i].Acceptance < points[i-1].Acceptance {
			t.Errorf("acceptance fell from %.2f (df=%g) to %.2f (df=%g)",
				points[i-1].Acceptance, dfs[i-1], points[i].Acceptance, dfs[i])
		}
	}
	for _, p := range points {
		if !p.CI.Contains(p.Acceptance) {
			t.Errorf("df=%g: CI %v does not contain %.3f", p.DF, p.CI, p.Acceptance)
		}
	}
	if points[len(points)-1].Acceptance == 0 {
		t.Error("no acceptance even at df=16: sweep exercised nothing")
	}
}

// TestDFSweepMatchesIndependent locks the shared-workload sweep (one draw
// and one safety verdict per set, walked across the df axis) to the
// independent per-df evaluation it replaced: a fresh allocating generator
// run and a full transient FTS per (df, set) on the same seed + i
// derivation. Every point's acceptance, interval and mean pfh must match
// exactly, including across worker counts.
func TestDFSweepMatchesIndependent(t *testing.T) {
	dfs := []float64{1.5, 2, 4, 8}
	const sets, seed = 24, 3
	params := gen.PaperParams(criticality.LevelB, criticality.LevelD, 0.8, 1e-5)
	scfg := safety.DefaultConfig()
	var want []DFPoint
	for _, df := range dfs {
		accepted := 0
		var pfhSum prob.KahanSum
		for i := 0; i < sets; i++ {
			rng := rand.New(rand.NewSource(seed + int64(i)))
			s, err := gen.TaskSet(rng, params)
			if err != nil {
				continue // degenerate draw: rejected
			}
			res, err := core.FTS(s, core.Options{Safety: scfg, Mode: safety.Degrade, DF: df})
			if err != nil {
				t.Fatal(err)
			}
			if res.OK {
				accepted++
				pfhSum.Add(res.PFHLO)
			}
		}
		p := DFPoint{
			DF:         df,
			Acceptance: float64(accepted) / float64(sets),
			CI:         stats.Wilson95(accepted, sets),
		}
		if accepted > 0 {
			p.MeanPFHLO = pfhSum.Value() / float64(accepted)
		}
		want = append(want, p)
	}
	for _, w := range []string{"1", "4"} {
		t.Setenv("FTMC_WORKERS", w)
		got, err := DFSweep(criticality.LevelB, criticality.LevelD, 0.8, 1e-5, dfs, sets, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("FTMC_WORKERS=%s: shared-workload sweep diverged:\n got %+v\nwant %+v", w, got, want)
		}
	}
}

func TestDFSweepErrors(t *testing.T) {
	if _, err := DFSweep(criticality.LevelB, criticality.LevelD, 0.8, 1e-5, nil, 10, 1); err == nil {
		t.Error("expected error for empty dfs")
	}
	if _, err := DFSweep(criticality.LevelB, criticality.LevelD, 0.8, 1e-5, []float64{1}, 10, 1); err == nil {
		t.Error("expected error for df <= 1")
	}
	if _, err := DFSweep(criticality.LevelB, criticality.LevelD, 0.8, 1e-5, []float64{2}, 0, 1); err == nil {
		t.Error("expected error for zero sets")
	}
}

func TestFMSRobustness(t *testing.T) {
	r, err := RunFMSRobustness(40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instances != 40 {
		t.Fatalf("instances = %d", r.Instances)
	}
	// The published minimal profiles are essentially structural (they
	// depend on the Table 4 periods, not the drawn WCETs): every
	// instance should match.
	if r.ProfilesMatch < 38 {
		t.Errorf("profiles (3,2) on only %d/40 instances", r.ProfilesMatch)
	}
	// Killing level C tasks should be uncertifiable on (nearly) all
	// instances — the paper's central negative result.
	if r.KillUncertifiable < 30 {
		t.Errorf("killing certified on %d/40 instances; expected it to fail almost always",
			40-r.KillUncertifiable)
	}
	// Degradation certifies only on low-U_LO draws: random Table 4
	// instances average U_LO ≈ 0.4, which n_LO = 2 doubles past what
	// eq. (12) tolerates. Measured: ≈17% over 100 instances — the
	// paper's single draw is not representative, which EXPERIMENTS.md
	// records. Here we only require the phenomenon to be visible.
	if r.DegradeCertifiable < 1 {
		t.Errorf("degradation certified on no instance")
	}
	if r.DegradeCertifiable > r.Instances/2 {
		t.Errorf("degradation certified on %d/40: expected a minority (typical draws are LO-heavy)",
			r.DegradeCertifiable)
	}
	if r.StoryHolds > r.KillUncertifiable || r.StoryHolds > r.DegradeCertifiable {
		t.Error("story count inconsistent")
	}
	if !strings.Contains(r.String(), "Table 4 instances") {
		t.Errorf("String = %q", r.String())
	}
}

func TestFMSRobustnessErrors(t *testing.T) {
	if _, err := RunFMSRobustness(0, 1); err == nil {
		t.Error("expected error")
	}
}

// The adaptation gain vanishes at both P_HI extremes and peaks in
// between: with almost no HI tasks the baseline already accepts; with
// almost no LO tasks there is nothing to kill.
func TestPHISweep(t *testing.T) {
	phis := []float64{0.05, 0.2, 0.5, 0.9}
	points, err := PHISweep(safety.Kill, 0, 0.8, 1e-5, phis, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(phis) {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Adapted < p.Baseline {
			t.Errorf("P_HI=%g: adapted %.2f below baseline %.2f", p.PHI, p.Adapted, p.Baseline)
		}
	}
	// The paper's operating point (0.2) should show a solid gap, the
	// extremes a smaller one.
	mid := points[1].Gap
	if mid <= points[3].Gap {
		t.Errorf("gap at P_HI=0.2 (%.2f) should exceed P_HI=0.9 (%.2f)", mid, points[3].Gap)
	}
	if mid <= 0.05 {
		t.Errorf("gap at the paper's P_HI=0.2 implausibly small: %.2f", mid)
	}
}

func TestPHISweepErrors(t *testing.T) {
	if _, err := PHISweep(safety.Kill, 0, 0.8, 1e-5, nil, 10, 1); err == nil {
		t.Error("empty phis accepted")
	}
	if _, err := PHISweep(safety.Kill, 0, 0.8, 1e-5, []float64{1}, 10, 1); err == nil {
		t.Error("P_HI=1 accepted")
	}
	if _, err := PHISweep(safety.Kill, 0, 0.8, 1e-5, []float64{0.2}, 0, 1); err == nil {
		t.Error("zero sets accepted")
	}
}
