package expt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"

	"repro/internal/obsv"
)

// ServeWorker is the worker side of the distributed campaign protocol:
// it reads the coordinator's hello, answers ready with this process's
// manifest, and then evaluates leases until done (or EOF, which a
// coordinator that lost interest presents). The evaluation engine is
// the same campaignRunner the single-process Campaign uses — one
// evalRange call per lease over the in-process stealing pool — so a
// worker's verdicts for a set are bit-identical to what Campaign would
// have computed for it, at any FTMC_WORKERS setting.
//
// The worker auto-detects the coordinator's protocol from the first
// byte of the stream: 0xF7 opens the binary frame protocol (wire.go),
// '{' the legacy line-delimited JSON protocol — one worker binary
// serves coordinators of either era, and WireJSON coordinators need no
// worker-side flag.
//
// rw is typically the process's stdin/stdout (cmd/ftmc-worker) or a TCP
// connection. ServeWorker returns nil after done and the transport or
// protocol error otherwise; an evaluation error is reported to the
// coordinator as an error message before returning.
func ServeWorker(rw io.ReadWriter) error {
	br := getBufReader(rw)
	first, err := br.Peek(1)
	if err != nil {
		putBufReader(br)
		return fmt.Errorf("expt: worker handshake: %w", err)
	}
	if first[0] == wireMagic {
		return serveWorkerWire(br, rw) // owns br's release (reader goroutine)
	}
	defer putBufReader(br)
	return serveWorkerJSON(br, rw)
}

// workerConfig validates the campaign a hello carries and returns the
// configuration count, shared by both protocol loops.
func workerConfig(cfg *CampaignConfig) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	nCfg := len(cfg.Panels) * len(cfg.FailProbs)
	if nCfg > maxDistConfigs {
		return 0, fmt.Errorf("expt: %d configurations exceed the wire format's %d", nCfg, maxDistConfigs)
	}
	return nCfg, nil
}

// checkLease bounds a granted lease against the campaign grid.
func checkLease(cfg *CampaignConfig, l lease) error {
	if l.hi-l.lo <= 0 || l.lo < 0 || l.hi > cfg.SetsPerPoint || l.ui < 0 || l.ui >= len(cfg.Utils) {
		return fmt.Errorf("expt: lease %d out of range: ui=%d sets [%d, %d)", l.id, l.ui, l.lo, l.hi)
	}
	return nil
}

// packVerdicts packs one lease's verdicts into wire words: bit 2c the
// baseline verdict and bit 2c+1 the adapted verdict of configuration c.
func packVerdicts(out []verdict, packed []uint64, nCfg int) {
	for j := range packed {
		var w uint64
		for c := 0; c < nCfg; c++ {
			v := out[j*nCfg+c]
			if v.base {
				w |= 1 << (2 * uint(c))
			}
			if v.adapt {
				w |= 1 << (2*uint(c) + 1)
			}
		}
		packed[j] = w
	}
}

// serveWorkerJSON is the legacy-protocol worker loop: line-delimited
// JSON, strict request-response. Kept as the differential reference
// for the frame protocol.
func serveWorkerJSON(br *bufio.Reader, rw io.ReadWriter) error {
	dec := json.NewDecoder(br)
	enc := json.NewEncoder(rw)

	var hello distMsg
	if err := dec.Decode(&hello); err != nil {
		return fmt.Errorf("expt: worker handshake: %w", err)
	}
	if hello.T != "hello" || hello.Config == nil {
		return fmt.Errorf("expt: worker handshake: got %q, want hello with a config", hello.T)
	}
	cfg := *hello.Config
	nCfg, err := workerConfig(&cfg)
	if err != nil {
		enc.Encode(distMsg{T: "error", Err: err.Error()})
		return err
	}
	manifest := obsv.NewManifest()
	manifest.Seed = cfg.Seed
	if err := enc.Encode(distMsg{T: "ready", Manifest: &manifest}); err != nil {
		return err
	}

	r := newCampaignRunner(&cfg)
	defer r.release()
	var m distMsg
	var out []verdict
	var packed []uint64
	for {
		m = distMsg{}
		if err := dec.Decode(&m); err != nil {
			if err == io.EOF {
				return fmt.Errorf("expt: coordinator hung up without done")
			}
			return err
		}
		switch m.T {
		case "done":
			return nil
		case "lease":
			l := lease{id: m.Lease, ui: m.UI, lo: m.Lo, hi: m.Hi}
			if err := checkLease(&cfg, l); err != nil {
				enc.Encode(distMsg{T: "error", Lease: l.id, Err: err.Error()})
				return err
			}
			n := l.hi - l.lo
			if cap(out) < n*nCfg {
				out = make([]verdict, n*nCfg)
			}
			if cap(packed) < n {
				packed = make([]uint64, n)
			}
			out = out[:n*nCfg]
			packed = packed[:n]
			if err := r.evalRange(l.ui, l.lo, l.hi, out); err != nil {
				enc.Encode(distMsg{T: "error", Lease: l.id, Err: err.Error()})
				return err
			}
			packVerdicts(out, packed, nCfg)
			if err := enc.Encode(distMsg{T: "result", Lease: l.id, UI: l.ui, Lo: l.lo, Hi: l.hi, V: packed}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("expt: worker got unexpected message %q", m.T)
		}
	}
}

// serveWorkerWire is the binary-protocol worker loop. A dedicated
// reader goroutine decodes incoming frames into a lease queue, so with
// a pipelining coordinator the decode of lease k+1 overlaps the
// evaluation of lease k and the worker never idles on a round-trip —
// the worker half of the pipeline pipeline.go drives.
func serveWorkerWire(br *bufio.Reader, rw io.ReadWriter) error {
	// br goes back to the pool only once no goroutine can touch it:
	// immediately on the pre-reader-goroutine error paths, and at return
	// if the reader goroutine has already exited (the done path). On
	// abandon paths the reader may still be blocked in a read, so br is
	// left to be collected with it.
	readerDone := make(chan struct{})
	readerLive := false
	defer func() {
		if !readerLive {
			putBufReader(br)
			return
		}
		select {
		case <-readerDone:
			putBufReader(br)
		default:
		}
	}()

	var pre [2]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return fmt.Errorf("expt: worker handshake: %w", err)
	}
	offered := int(pre[1])
	if pre[0] != wireMagic || offered < 1 {
		return fmt.Errorf("expt: worker handshake: bad preamble %#x version %d", pre[0], offered)
	}
	// Negotiate down to the newest version both sides speak; v1 is all
	// this worker knows, and v1 frames stay valid in every later
	// version (the coordinator reads our answer from ready).
	version := wireV1
	if offered < version {
		version = offered
	}

	dec := newFrameDec(br)
	t, body, err := dec.next()
	if err != nil {
		return fmt.Errorf("expt: worker handshake: %w", err)
	}
	if t != frameHello {
		return fmt.Errorf("expt: worker handshake: got frame %#x, want hello", t)
	}
	hb := wireBuf{b: body}
	cfgJSON, err := hb.lenBytes()
	if err != nil {
		return fmt.Errorf("expt: worker handshake: %w", err)
	}
	var cfg CampaignConfig
	if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
		return fmt.Errorf("expt: worker handshake: %w", err)
	}

	bw := getBufWriter(rw)
	defer putBufWriter(bw) // only this goroutine writes
	enc := newFrameEnc(bw)
	sendErr := func(id int, err error) {
		enc.begin(frameError)
		enc.uvarint(uint64(id))
		enc.lenBytes([]byte(err.Error()))
		if enc.flush() == nil {
			bw.Flush()
		}
	}

	nCfg, err := workerConfig(&cfg)
	if err != nil {
		sendErr(0, err)
		return err
	}
	manifest := obsv.NewManifest()
	manifest.Seed = cfg.Seed
	mb, err := json.Marshal(&manifest)
	if err != nil {
		return err
	}
	enc.begin(frameReady)
	enc.uvarint(uint64(version))
	enc.lenBytes(mb)
	if err := enc.flush(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	// Reader goroutine: frames off the transport into the lease queue.
	// The queue depth caps read-ahead at the coordinator's window.
	type item struct {
		l    lease
		done bool
		err  error
	}
	items := make(chan item, 16)
	readerLive = true
	go func() {
		defer close(readerDone)
		defer close(items)
		for {
			t, body, err := dec.next()
			if err != nil {
				if err == io.EOF {
					err = fmt.Errorf("expt: coordinator hung up without done")
				}
				items <- item{err: err}
				return
			}
			switch t {
			case frameDone:
				items <- item{done: true}
				return
			case frameLease:
				r := wireBuf{b: body}
				id, ui, lo, hi, err := r.leaseHeader()
				if err == nil && len(r.b) != 0 {
					err = fmt.Errorf("expt: %d trailing bytes after lease header", len(r.b))
				}
				if err != nil {
					items <- item{err: err}
					return
				}
				items <- item{l: lease{id: id, ui: ui, lo: lo, hi: hi}}
			default:
				items <- item{err: fmt.Errorf("expt: worker got unexpected frame %#x", t)}
				return
			}
		}
	}()

	r := newCampaignRunner(&cfg)
	defer r.release()
	// If the loop below returns early (eval error, bad lease), keep the
	// reader goroutine from blocking on a full queue until the
	// coordinator hangs up: drain whatever it still sends.
	defer func() {
		go func() {
			for range items {
			}
		}()
	}()
	var out []verdict
	var packed []uint64
	for it := range items {
		if it.err != nil {
			return it.err
		}
		if it.done {
			return nil
		}
		l := it.l
		if err := checkLease(&cfg, l); err != nil {
			sendErr(l.id, err)
			return err
		}
		n := l.hi - l.lo
		if cap(out) < n*nCfg {
			out = make([]verdict, n*nCfg)
		}
		if cap(packed) < n {
			packed = make([]uint64, n)
		}
		out = out[:n*nCfg]
		packed = packed[:n]
		if err := r.evalRange(l.ui, l.lo, l.hi, out); err != nil {
			sendErr(l.id, err)
			return err
		}
		packVerdicts(out, packed, nCfg)
		enc.begin(frameResult)
		enc.uvarint(uint64(l.id))
		enc.appendResultWords(packed)
		if err := enc.flush(); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// PipeWorkers starts n in-process protocol workers over net.Pipe and
// returns the coordinator ends, ready to pass to DistCampaign. Each
// worker runs ServeWorker on its own goroutine and closes its end on
// return. In-process workers exercise the full wire protocol (framing,
// packing, merge) without subprocess or socket plumbing — the hermetic
// form the tests and benchmarks use; production scale-out uses
// StartWorkerProcs or AcceptWorkers instead.
func PipeWorkers(n int) []io.ReadWriteCloser {
	conns := make([]io.ReadWriteCloser, n)
	for i := range conns {
		c, w := net.Pipe()
		conns[i] = c
		go func(w net.Conn) {
			defer w.Close()
			ServeWorker(w) // errors surface coordinator-side as worker loss
		}(w)
	}
	return conns
}

// procConn adapts a subprocess's stdin/stdout pipes to the
// io.ReadWriteCloser DistCampaign drives; Close closes stdin (the
// worker's EOF), then reaps the process.
type procConn struct {
	io.Reader // the worker's stdout
	in        io.WriteCloser
	cmd       *exec.Cmd
}

func (p *procConn) Write(b []byte) (int, error) { return p.in.Write(b) }

func (p *procConn) Close() error {
	p.in.Close()
	return p.cmd.Wait()
}

// StartWorkerProcs launches n copies of the worker binary (built from
// cmd/ftmc-worker) speaking the protocol on their stdin/stdout, with
// stderr passed through to this process's stderr. The returned
// connections go straight to DistCampaign, which closes them —
// reaping the subprocesses — before returning.
func StartWorkerProcs(bin string, n int, args ...string) ([]io.ReadWriteCloser, error) {
	conns := make([]io.ReadWriteCloser, 0, n)
	fail := func(err error) ([]io.ReadWriteCloser, error) {
		for _, c := range conns {
			c.Close()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		in, err := cmd.StdinPipe()
		if err != nil {
			return fail(err)
		}
		out, err := cmd.StdoutPipe()
		if err != nil {
			return fail(err)
		}
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("expt: starting worker %d: %w", i, err))
		}
		conns = append(conns, &procConn{Reader: out, in: in, cmd: cmd})
	}
	return conns, nil
}

// AcceptWorkers accepts n worker connections (cmd/ftmc-worker -connect)
// on the listener and returns them for DistCampaign. The caller keeps
// ownership of the listener.
func AcceptWorkers(ln net.Listener, n int) ([]io.ReadWriteCloser, error) {
	conns := make([]io.ReadWriteCloser, 0, n)
	for i := 0; i < n; i++ {
		c, err := ln.Accept()
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, err
		}
		conns = append(conns, c)
	}
	return conns, nil
}
