package expt

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"

	"repro/internal/obsv"
)

// ServeWorker is the worker side of the distributed campaign protocol:
// it reads the coordinator's hello, answers ready with this process's
// manifest, and then evaluates leases until done (or EOF, which a
// coordinator that lost interest presents). The evaluation engine is
// the same campaignRunner the single-process Campaign uses — one
// evalRange call per lease over the in-process stealing pool — so a
// worker's verdicts for a set are bit-identical to what Campaign would
// have computed for it, at any FTMC_WORKERS setting.
//
// rw is typically the process's stdin/stdout (cmd/ftmc-worker) or a TCP
// connection. ServeWorker returns nil after done and the transport or
// protocol error otherwise; an evaluation error is reported to the
// coordinator as an error message before returning.
func ServeWorker(rw io.ReadWriter) error {
	dec := json.NewDecoder(rw)
	enc := json.NewEncoder(rw)

	var hello distMsg
	if err := dec.Decode(&hello); err != nil {
		return fmt.Errorf("expt: worker handshake: %w", err)
	}
	if hello.T != "hello" || hello.Config == nil {
		return fmt.Errorf("expt: worker handshake: got %q, want hello with a config", hello.T)
	}
	cfg := *hello.Config
	if err := cfg.Validate(); err != nil {
		enc.Encode(distMsg{T: "error", Err: err.Error()})
		return err
	}
	nCfg := len(cfg.Panels) * len(cfg.FailProbs)
	if nCfg > maxDistConfigs {
		err := fmt.Errorf("expt: %d configurations exceed the wire format's %d", nCfg, maxDistConfigs)
		enc.Encode(distMsg{T: "error", Err: err.Error()})
		return err
	}
	manifest := obsv.NewManifest()
	manifest.Seed = cfg.Seed
	if err := enc.Encode(distMsg{T: "ready", Manifest: &manifest}); err != nil {
		return err
	}

	r := newCampaignRunner(&cfg)
	var out []verdict
	var packed []uint64
	for {
		var m distMsg
		if err := dec.Decode(&m); err != nil {
			if err == io.EOF {
				return fmt.Errorf("expt: coordinator hung up without done")
			}
			return err
		}
		switch m.T {
		case "done":
			return nil
		case "lease":
			n := m.Hi - m.Lo
			if n <= 0 || m.Lo < 0 || m.Hi > cfg.SetsPerPoint || m.UI < 0 || m.UI >= len(cfg.Utils) {
				err := fmt.Errorf("expt: lease %d out of range: ui=%d sets [%d, %d)", m.Lease, m.UI, m.Lo, m.Hi)
				enc.Encode(distMsg{T: "error", Lease: m.Lease, Err: err.Error()})
				return err
			}
			if cap(out) < n*nCfg {
				out = make([]verdict, n*nCfg)
				packed = make([]uint64, n)
			}
			out = out[:n*nCfg]
			packed = packed[:n]
			if err := r.evalRange(m.UI, m.Lo, m.Hi, out); err != nil {
				enc.Encode(distMsg{T: "error", Lease: m.Lease, Err: err.Error()})
				return err
			}
			for j := range packed {
				var w uint64
				for c := 0; c < nCfg; c++ {
					v := out[j*nCfg+c]
					if v.base {
						w |= 1 << (2 * uint(c))
					}
					if v.adapt {
						w |= 1 << (2*uint(c) + 1)
					}
				}
				packed[j] = w
			}
			if err := enc.Encode(distMsg{T: "result", Lease: m.Lease, UI: m.UI, Lo: m.Lo, Hi: m.Hi, V: packed}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("expt: worker got unexpected message %q", m.T)
		}
	}
}

// PipeWorkers starts n in-process protocol workers over net.Pipe and
// returns the coordinator ends, ready to pass to DistCampaign. Each
// worker runs ServeWorker on its own goroutine and closes its end on
// return. In-process workers exercise the full wire protocol (framing,
// packing, merge) without subprocess or socket plumbing — the hermetic
// form the tests and benchmarks use; production scale-out uses
// StartWorkerProcs or AcceptWorkers instead.
func PipeWorkers(n int) []io.ReadWriteCloser {
	conns := make([]io.ReadWriteCloser, n)
	for i := range conns {
		c, w := net.Pipe()
		conns[i] = c
		go func(w net.Conn) {
			defer w.Close()
			ServeWorker(w) // errors surface coordinator-side as worker loss
		}(w)
	}
	return conns
}

// procConn adapts a subprocess's stdin/stdout pipes to the
// io.ReadWriteCloser DistCampaign drives; Close closes stdin (the
// worker's EOF), then reaps the process.
type procConn struct {
	io.Reader // the worker's stdout
	in        io.WriteCloser
	cmd       *exec.Cmd
}

func (p *procConn) Write(b []byte) (int, error) { return p.in.Write(b) }

func (p *procConn) Close() error {
	p.in.Close()
	return p.cmd.Wait()
}

// StartWorkerProcs launches n copies of the worker binary (built from
// cmd/ftmc-worker) speaking the protocol on their stdin/stdout, with
// stderr passed through to this process's stderr. The returned
// connections go straight to DistCampaign, which closes them —
// reaping the subprocesses — before returning.
func StartWorkerProcs(bin string, n int, args ...string) ([]io.ReadWriteCloser, error) {
	conns := make([]io.ReadWriteCloser, 0, n)
	fail := func(err error) ([]io.ReadWriteCloser, error) {
		for _, c := range conns {
			c.Close()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		in, err := cmd.StdinPipe()
		if err != nil {
			return fail(err)
		}
		out, err := cmd.StdoutPipe()
		if err != nil {
			return fail(err)
		}
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("expt: starting worker %d: %w", i, err))
		}
		conns = append(conns, &procConn{Reader: out, in: in, cmd: cmd})
	}
	return conns, nil
}

// AcceptWorkers accepts n worker connections (cmd/ftmc-worker -connect)
// on the listener and returns them for DistCampaign. The caller keeps
// ownership of the listener.
func AcceptWorkers(ln net.Listener, n int) ([]io.ReadWriteCloser, error) {
	conns := make([]io.ReadWriteCloser, 0, n)
	for i := 0; i < n; i++ {
		c, err := ln.Accept()
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, err
		}
		conns = append(conns, c)
	}
	return conns, nil
}
