package expt

import (
	"math"
	"strings"
	"testing"

	"repro/internal/criticality"
	"repro/internal/gen"
	"repro/internal/safety"
)

// The calibrated Fig. 1 reproduction: n_HI = 3, n_LO = 2 (as the paper
// derives for the FMS), the UMC curve rises with n′_HI and crosses 1
// between n′_HI = 2 and 3, and pfh(LO) falls with n′_HI with the killing
// bound around 1e-1..1e0 at n′_HI = 2.
func TestFig1Shape(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if r.NHI != 3 || r.NLO != 2 {
		t.Fatalf("profiles n_HI=%d n_LO=%d, want 3/2 (paper §5.1)", r.NHI, r.NLO)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].UMC < r.Points[i-1].UMC {
			t.Errorf("UMC not non-decreasing at n'=%d", i+1)
		}
		if r.Points[i].PFHLO > r.Points[i-1].PFHLO {
			t.Errorf("pfh(LO) not non-increasing at n'=%d", i+1)
		}
	}
	if !r.Points[0].Schedulable || !r.Points[1].Schedulable {
		t.Error("n' = 1, 2 must be schedulable")
	}
	if r.Points[2].Schedulable || r.Points[3].Schedulable {
		t.Error("n' = 3, 4 must be unschedulable (paper: n' > 2)")
	}
	// Killing devastates LO safety at small n′: around 1e-1 at n′ = 2.
	if lg := r.Points[1].Log10PFHLO; lg < -3 || lg > 1 {
		t.Errorf("log10 pfh(LO) at n'=2 = %.2f, want ≈ -1..0 (paper: order 1e-1)", lg)
	}
	if r.Points[0].Safe || r.Points[1].Safe {
		t.Error("killing at n' <= 2 must violate level C safety")
	}
}

// The calibrated Fig. 2 reproduction: same profile derivation, crossing
// between n′_HI = 2 and 3, and pfh(LO) around 1e-10 at n′_HI = 2 — ten
// orders of magnitude safer than killing, the paper's headline comparison.
func TestFig2Shape(t *testing.T) {
	r, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if r.NHI != 3 || r.NLO != 2 {
		t.Fatalf("profiles n_HI=%d n_LO=%d, want 3/2", r.NHI, r.NLO)
	}
	if !r.Points[0].Schedulable || !r.Points[1].Schedulable {
		t.Error("n' = 1, 2 must be schedulable")
	}
	if r.Points[2].Schedulable || r.Points[3].Schedulable {
		t.Error("n' = 3, 4 must be unschedulable")
	}
	if lg := r.Points[1].Log10PFHLO; lg > -8 {
		t.Errorf("log10 pfh(LO) at n'=2 = %.2f, want <= -8 (paper: order 1e-11)", lg)
	}
	if !r.Points[1].Safe {
		t.Error("degradation at n'=2 must satisfy level C safety")
	}
}

// Degradation beats killing on LO safety at every sweep point when run on
// the same instance.
func TestKillingVsDegradationSameInstance(t *testing.T) {
	s := gen.FMSAt(gen.DefaultFMSKillSeed)
	kill, err := FMSSweep(s, safety.Kill, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := FMSSweep(s, safety.Degrade, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range kill.Points {
		if deg.Points[i].PFHLO > kill.Points[i].PFHLO {
			t.Errorf("n'=%d: degradation pfh %g > killing pfh %g",
				i+1, deg.Points[i].PFHLO, kill.Points[i].PFHLO)
		}
	}
}

func TestFMSSweepErrors(t *testing.T) {
	s := gen.FMSAt(1)
	if _, err := FMSSweep(s, safety.Kill, 0, 0); err == nil {
		t.Error("expected error for maxNPrime = 0")
	}
	if _, err := FMSSweep(s, safety.AdaptMode(9), 0, 2); err == nil {
		t.Error("expected error for unknown mode")
	}
}

func TestPanelConfig(t *testing.T) {
	for _, c := range []struct {
		panel string
		lo    criticality.Level
		mode  safety.AdaptMode
	}{
		{"3a", criticality.LevelD, safety.Kill},
		{"3b", criticality.LevelC, safety.Kill},
		{"3c", criticality.LevelD, safety.Degrade},
		{"3d", criticality.LevelC, safety.Degrade},
	} {
		cfg, err := PanelConfig(c.panel, 10, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.panel, err)
		}
		if cfg.LO != c.lo || cfg.Mode != c.mode {
			t.Errorf("%s: LO=%v mode=%v", c.panel, cfg.LO, cfg.Mode)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", c.panel, err)
		}
	}
	if _, err := PanelConfig("3e", 10, 1); err == nil {
		t.Error("expected error for unknown panel")
	}
}

func TestFig3ConfigValidate(t *testing.T) {
	good, _ := PanelConfig("3a", 10, 1)
	bad := []func(*Fig3Config){
		func(c *Fig3Config) { c.HI = criticality.LevelD; c.LO = criticality.LevelB },
		func(c *Fig3Config) { c.Mode = safety.Degrade; c.DF = 1 },
		func(c *Fig3Config) { c.FailProbs = nil },
		func(c *Fig3Config) { c.Utils = nil },
		func(c *Fig3Config) { c.SetsPerPoint = 0 },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// A reduced-scale panel 3a: acceptance falls with utilization, adaptation
// dominates the baseline, and smaller f dominates larger f.
func TestFig3aReducedShape(t *testing.T) {
	cfg, err := PanelConfig("3a", 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Utils = []float64{0.5, 0.7, 0.9}
	r, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 2 {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	for _, c := range r.Curves {
		for i := range cfg.Utils {
			if c.Adapted[i] < c.Baseline[i] {
				t.Errorf("f=%g U=%.2f: adapted %.2f < baseline %.2f",
					c.FailProb, cfg.Utils[i], c.Adapted[i], c.Baseline[i])
			}
			if c.Adapted[i] < 0 || c.Adapted[i] > 1 || c.Baseline[i] < 0 || c.Baseline[i] > 1 {
				t.Errorf("ratio out of [0,1]")
			}
		}
		// Monotone-ish fall with U: allow small sampling noise.
		if c.Adapted[0]+0.15 < c.Adapted[len(cfg.Utils)-1] {
			t.Errorf("f=%g: acceptance rising with U: %v", c.FailProb, c.Adapted)
		}
	}
	// Safer hardware (f = 1e-5, curve index 1) must not do worse overall.
	var sumHi, sumLo float64
	for i := range cfg.Utils {
		sumHi += r.Curves[0].Adapted[i]
		sumLo += r.Curves[1].Adapted[i]
	}
	if sumLo+1e-9 < sumHi {
		t.Errorf("f=1e-5 total acceptance %.2f below f=1e-3 %.2f", sumLo, sumHi)
	}
	// Killing must visibly widen the schedulable region for LO ∈ {D, E}
	// at high utilization (Fig. 3a's shadow).
	gap := r.Curves[1].Adapted[2] - r.Curves[1].Baseline[2]
	if gap <= 0 {
		t.Errorf("no adaptation gain at U=0.9 (gap %.2f)", gap)
	}
}

// Panel 3b (LO = C, killing): the gap between adapted and baseline nearly
// vanishes — killing violates LO safety, the paper's central negative
// result.
func TestFig3bKillingRarelyHelps(t *testing.T) {
	cfgA, _ := PanelConfig("3a", 40, 7)
	cfgB, _ := PanelConfig("3b", 40, 7)
	cfgA.Utils = []float64{0.9}
	cfgB.Utils = []float64{0.9}
	cfgA.FailProbs = []float64{1e-5}
	cfgB.FailProbs = []float64{1e-5}
	ra, err := Fig3(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Fig3(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	gapA := ra.Curves[0].Adapted[0] - ra.Curves[0].Baseline[0]
	gapB := rb.Curves[0].Adapted[0] - rb.Curves[0].Baseline[0]
	if gapB > gapA {
		t.Errorf("killing helps safety-relevant LO tasks more (%.2f) than D/E tasks (%.2f)", gapB, gapA)
	}
	if gapB > 0.2 {
		t.Errorf("killing gap for LO=C = %.2f, should be small (paper: rarely helps)", gapB)
	}
}

func TestFig3Deterministic(t *testing.T) {
	cfg, _ := PanelConfig("3a", 20, 3)
	cfg.Utils = []float64{0.8}
	cfg.FailProbs = []float64{1e-5}
	a, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Curves[0].Adapted[0] != b.Curves[0].Adapted[0] || a.Curves[0].Baseline[0] != b.Curves[0].Baseline[0] {
		t.Error("Fig3 not deterministic in seed")
	}
}

func TestFig3RejectsBadConfig(t *testing.T) {
	if _, err := Fig3(Fig3Config{}); err == nil {
		t.Error("expected error")
	}
}

func TestPaperUtils(t *testing.T) {
	utils := PaperUtils()
	if len(utils) != 15 {
		t.Fatalf("len = %d, want 15 (0.30..1.00 step 0.05)", len(utils))
	}
	if math.Abs(utils[0]-0.30) > 1e-9 || math.Abs(utils[14]-1.00) > 1e-9 {
		t.Errorf("range = [%g, %g]", utils[0], utils[14])
	}
}

func TestRenderers(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	headers, rows := FMSRows(r)
	var tbl strings.Builder
	if err := WriteTable(&tbl, headers, rows); err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"n'_HI", "UMC", "log10 pfh(LO)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got != 2+len(rows) {
		t.Errorf("table has %d lines, want %d", got, 2+len(rows))
	}
	var csv strings.Builder
	if err := WriteCSV(&csv, headers, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "n'_HI,UMC") {
		t.Errorf("csv header = %q", strings.SplitN(csv.String(), "\n", 2)[0])
	}

	cfg, _ := PanelConfig("3a", 5, 1)
	cfg.Utils = []float64{0.5}
	fr, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h3, r3 := Fig3Rows(fr)
	if len(h3) != 5 || len(r3) != 1 {
		t.Errorf("fig3 rows: %d headers, %d rows", len(h3), len(r3))
	}

	ccfg := PaperCampaign(5, 1)
	ccfg.Utils = []float64{0.5}
	cr, err := Campaign(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	hc, rc := CampaignRows(cr)
	want := len(ccfg.Panels) * len(ccfg.FailProbs) * len(ccfg.Utils)
	if len(hc) != 7 || len(rc) != want {
		t.Errorf("campaign rows: %d headers, %d rows, want 7 and %d", len(hc), len(rc), want)
	}
	var ctbl strings.Builder
	if err := WriteTable(&ctbl, hc, rc); err != nil {
		t.Fatal(err)
	}
	for _, wantS := range []string{"3c", "degrade(df=", "kill"} {
		if !strings.Contains(ctbl.String(), wantS) {
			t.Errorf("campaign table missing %q:\n%s", wantS, ctbl.String())
		}
	}
}
