package expt

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/criticality"
	"repro/internal/gen"
	"repro/internal/safety"
	"repro/internal/task"
)

// Fig3Config parameterizes one panel of the Fig. 3 acceptance-ratio
// experiment.
type Fig3Config struct {
	// HI, LO are the DO-178B levels of the two classes: the paper uses
	// HI = B with LO ∈ {D, E} (panels a, c) or LO = C (panels b, d).
	HI, LO criticality.Level
	// Mode is killing (panels a, b) or service degradation (panels c, d).
	Mode safety.AdaptMode
	// DF is the degradation factor, read in Degrade mode.
	DF float64
	// FailProbs lists the universal per-attempt failure probabilities f;
	// the paper plots f = 1e-3 and f = 1e-5.
	FailProbs []float64
	// Utils is the x-axis: nominal system utilizations U.
	Utils []float64
	// SetsPerPoint is the number of random task sets per data point (500
	// in the paper).
	SetsPerPoint int
	// Seed makes the experiment reproducible; set i at utilization index
	// u and failure-prob index p derives its RNG deterministically.
	Seed int64
	// Generator selects the workload generator; the zero value is the
	// paper's Appendix C generator.
	Generator Generator
	// TasksPerSet fixes the task count for the UUnifast generator
	// (ignored by Appendix C); 0 defaults to 10.
	TasksPerSet int
}

// Generator selects how random task sets are drawn.
type Generator int

const (
	// GenAppendixC adds u ~ U[u−, u+] tasks until the target utilization
	// is reached — the paper's generator.
	GenAppendixC Generator = iota
	// GenUUnifast draws a fixed task count with UUnifast utilizations —
	// the field-standard alternative, as a workload-shape ablation.
	GenUUnifast
)

// String names the generator.
func (g Generator) String() string {
	if g == GenUUnifast {
		return "UUnifast"
	}
	return "AppendixC"
}

// Validate reports configuration errors.
func (c Fig3Config) Validate() error {
	if !c.HI.MoreCriticalThan(c.LO) {
		return fmt.Errorf("expt: HI level %v must exceed LO level %v", c.HI, c.LO)
	}
	if c.Mode == safety.Degrade && c.DF <= 1 {
		return fmt.Errorf("expt: degradation factor must be > 1, got %g", c.DF)
	}
	if len(c.FailProbs) == 0 || len(c.Utils) == 0 || c.SetsPerPoint < 1 {
		return fmt.Errorf("expt: need failure probabilities, utilizations and sets per point")
	}
	return nil
}

// Fig3Curve is the pair of acceptance-ratio series for one failure
// probability: with and without adaptation. The vertical gap between them
// is the shadow the paper shades.
type Fig3Curve struct {
	// FailProb is f.
	FailProb float64
	// Baseline[i] is the acceptance ratio at Utils[i] without killing or
	// degradation: minimal re-execution profiles exist and the fully
	// re-executed set satisfies the exact implicit-deadline EDF bound
	// n_HI·U_HI + n_LO·U_LO ≤ 1.
	Baseline []float64
	// Adapted[i] is the acceptance ratio with adaptation available: a set
	// counts if the baseline accepts it or FT-S (Algorithm 1) succeeds.
	// The paper adopts adaptation "only if the system is not feasible
	// otherwise".
	Adapted []float64
}

// Fig3Result is one reproduced panel.
type Fig3Result struct {
	Config Fig3Config
	Curves []Fig3Curve
}

// Fig3 runs one panel of the extensive simulations: for every (f, U) data
// point it draws SetsPerPoint random task sets with the configured
// generator and reports the fraction accepted with and without
// adaptation. Sets are processed in parallel through the pooled
// zero-allocation engine (one gen.Drawer and one core.Scratch per
// worker); every set's verdict depends only on its keyed RNG stream —
// gen.SimulationKey{Seed, pi, ui, i} — so results are deterministic in
// Seed and byte-identical across every FTMC_WORKERS value, any claim
// schedule, and any partition of the set axis into lease ranges.
func Fig3(cfg Fig3Config) (Fig3Result, error) {
	return fig3(cfg, fig3Point)
}

// Fig3Ref is Fig3 through the original allocating per-set path (a fresh
// generator run and transient FTS state per set), still seeded by the
// frozen legacy pointSeed/setSeed chain. It is the reference for
// differential tests and before/after benchmarks of the pooled engine:
// the keyed engines reproduce its draws bit for bit because the
// workload stream of gen.SimulationKey is the same chain (see
// TestSimulationKeyMatchesLegacySeeding).
func Fig3Ref(cfg Fig3Config) (Fig3Result, error) {
	return fig3(cfg, fig3PointRef)
}

func fig3(cfg Fig3Config, point func(Fig3Config, int, int) (float64, float64)) (Fig3Result, error) {
	if err := cfg.Validate(); err != nil {
		return Fig3Result{}, err
	}
	res := Fig3Result{Config: cfg}
	for pi, f := range cfg.FailProbs {
		curve := Fig3Curve{
			FailProb: f,
			Baseline: make([]float64, len(cfg.Utils)),
			Adapted:  make([]float64, len(cfg.Utils)),
		}
		for ui := range cfg.Utils {
			m := exptView.Get()
			sp := m.fig3PointNs.Start()
			base, adapted := point(cfg, pi, ui)
			sp.End()
			m.fig3Points.Inc()
			curve.Baseline[ui] = base
			curve.Adapted[ui] = adapted
		}
		res.Curves = append(res.Curves, curve)
	}
	return res, nil
}

// pointSeed and setSeed are the frozen legacy seed derivation — the
// splitmix64 chain the engines used before gen.SimulationKey existed.
// They are kept as the reference path (Fig3Ref still seeds from them)
// and locked against the keyed derivation by
// TestSimulationKeyMatchesLegacySeeding; new code should address draws
// with gen.SimulationKey instead.
func pointSeed(seed int64, pi, ui int) int64 {
	x := legacyMix64(uint64(seed))
	x = legacyMix64(x + 0x9E3779B97F4A7C15*uint64(pi+1))
	x = legacyMix64(x + 0x9E3779B97F4A7C15*uint64(ui+1))
	return int64(x)
}

// setSeed derives the legacy RNG seed of set i at a data point.
func setSeed(point int64, i int) int64 {
	return int64(legacyMix64(uint64(point) + 0x9E3779B97F4A7C15*uint64(i+1)))
}

// legacyMix64 is the splitmix64 finalizer, spelled out locally so the
// legacy reference derivation stays independent of gen.Mix64.
func legacyMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// verdict is one task set's acceptance with and without adaptation.
type verdict struct{ base, adapt bool }

// fig3Chunk is the ForEachWorker claim size: sets cost on the order of a
// millisecond each, so a handful per claim amortizes the atomic without
// hurting load balance at SetsPerPoint = 500.
const fig3Chunk = 8

// setEval is the per-worker pooled state of the Fig. 3 engine: one task
// set arena and one FT-S scratch, reused across every set the worker
// evaluates.
type setEval struct {
	drawer  *gen.Drawer
	scratch *core.Scratch
}

// fig3Point evaluates one data point through the pooled engine, fanning
// the task sets across Workers() goroutines in chunks. Per-worker state
// is created lazily on first claim; every set draws from its own keyed
// stream and verdicts are filled by set index and reduced serially, so
// the ratios do not depend on the worker count or claim schedule.
func fig3Point(cfg Fig3Config, pi, ui int) (baseline, adapted float64) {
	params := gen.PaperParams(cfg.HI, cfg.LO, cfg.Utils[ui], cfg.FailProbs[pi])
	tasksPerSet := 0
	if cfg.Generator == GenUUnifast {
		tasksPerSet = cfg.TasksPerSet
		if tasksPerSet == 0 {
			tasksPerSet = 10
		}
	}
	verdicts := make([]verdict, cfg.SetsPerPoint)
	evals := make([]*setEval, Workers())
	ForEachWorker(cfg.SetsPerPoint, fig3Chunk, func(w, i int) error {
		ev := evals[w]
		if ev == nil {
			d, err := gen.NewDrawer(params, tasksPerSet)
			if err != nil {
				return err
			}
			ev = &setEval{drawer: d, scratch: core.NewScratch()}
			evals[w] = ev
		}
		s, err := ev.drawer.DrawKeyed(gen.SimulationKey{Seed: cfg.Seed, Panel: pi, Point: ui, Set: i})
		if err != nil {
			return nil // degenerate draw: reject both ways
		}
		verdicts[i] = judge(cfg, s, ev.scratch)
		return nil
	})
	return reduceVerdicts(verdicts)
}

// fig3PointRef evaluates one data point through the original allocating
// path: one fresh RNG and generator run per set, transient FTS state,
// seeded by the frozen legacy chain.
func fig3PointRef(cfg Fig3Config, pi, ui int) (baseline, adapted float64) {
	params := gen.PaperParams(cfg.HI, cfg.LO, cfg.Utils[ui], cfg.FailProbs[pi])
	point := pointSeed(cfg.Seed, pi, ui)
	verdicts := make([]verdict, cfg.SetsPerPoint)
	ForEach(cfg.SetsPerPoint, func(i int) error {
		rng := rand.New(rand.NewSource(setSeed(point, i)))
		verdicts[i] = evalOneRef(cfg, params, rng)
		return nil
	})
	return reduceVerdicts(verdicts)
}

func reduceVerdicts(verdicts []verdict) (baseline, adapted float64) {
	var nb, na int
	for _, v := range verdicts {
		if v.base {
			nb++
		}
		if v.adapt {
			na++
		}
	}
	n := float64(len(verdicts))
	return float64(nb) / n, float64(na) / n
}

// evalOneRef draws one random set with the allocating generators and
// judges it — the pre-pooling reference path.
func evalOneRef(cfg Fig3Config, params gen.Params, rng *rand.Rand) verdict {
	var s *task.Set
	var err error
	if cfg.Generator == GenUUnifast {
		n := cfg.TasksPerSet
		if n == 0 {
			n = 10
		}
		s, err = gen.UUnifastTaskSet(rng, n, params)
	} else {
		s, err = gen.TaskSet(rng, params)
	}
	if err != nil {
		return verdict{} // degenerate draw: reject both ways
	}
	return judge(cfg, s, nil)
}

// judge applies the Appendix C acceptance criterion to one set: accept
// outright when the fully re-executed set passes the exact EDF bound,
// otherwise accept iff FT-S succeeds. A nil scratch selects the
// allocating FTS path.
func judge(cfg Fig3Config, s *task.Set, scr *core.Scratch) (v verdict) {
	scfg := safety.DefaultConfig()
	dual := s.Dual()
	nHI, errHI := scfg.MinReexecProfile(s.ByClass(criticality.HI), dual.Requirement(criticality.HI))
	nLO, errLO := scfg.MinReexecProfile(s.ByClass(criticality.LO), dual.Requirement(criticality.LO))
	if errHI == nil && errLO == nil {
		total := s.ScaledUtilization(criticality.HI, nHI) + s.ScaledUtilization(criticality.LO, nLO)
		v.base = total <= 1
	}
	if v.base {
		// Adaptation is only adopted when the system is infeasible
		// otherwise (Appendix C).
		v.adapt = true
		return v
	}
	res, err := core.FTS(s, core.Options{Safety: scfg, Mode: cfg.Mode, DF: cfg.DF, Scratch: scr})
	v.adapt = err == nil && res.OK
	return v
}

// PaperUtils is the utilization axis used by the reproduction: 0.3 to 1.0
// in steps of 0.05. The low end matters for the LO = C panels (3b, 3d),
// whose re-execution profiles multiply the LO utilization so acceptance
// collapses well before U = 1.
func PaperUtils() []float64 {
	var utils []float64
	for u := 0.30; u <= 1.001; u += 0.05 {
		utils = append(utils, u)
	}
	return utils
}

// PanelConfig returns the configuration of one of the four published
// panels ("3a", "3b", "3c", "3d") with the given sample count and seed.
func PanelConfig(panel string, setsPerPoint int, seed int64) (Fig3Config, error) {
	cfg := Fig3Config{
		HI:           criticality.LevelB,
		FailProbs:    []float64{1e-3, 1e-5},
		Utils:        PaperUtils(),
		SetsPerPoint: setsPerPoint,
		Seed:         seed,
	}
	switch panel {
	case "3a":
		cfg.LO, cfg.Mode = criticality.LevelD, safety.Kill
	case "3b":
		cfg.LO, cfg.Mode = criticality.LevelC, safety.Kill
	case "3c":
		cfg.LO, cfg.Mode, cfg.DF = criticality.LevelD, safety.Degrade, gen.FMSDegradeFactor
	case "3d":
		cfg.LO, cfg.Mode, cfg.DF = criticality.LevelC, safety.Degrade, gen.FMSDegradeFactor
	default:
		return Fig3Config{}, fmt.Errorf("expt: unknown panel %q (want 3a..3d)", panel)
	}
	return cfg, nil
}
