package expt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// journalLines splits a journal file into its newline-terminated lines
// (header first).
func journalLines(t *testing.T, path string) [][]byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(b, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	return lines
}

// TestDistCampaignCheckpointResume is the restart contract end to end:
// a completed journal replays the whole campaign without granting a
// single lease; a journal cut mid-run (as a dead coordinator leaves
// it, torn tail included) replays its prefix and re-runs only the
// rest; the merged bytes are identical in every case.
func TestDistCampaignCheckpointResume(t *testing.T) {
	cfg := smallCampaign()
	want, err := Campaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantB := resultBytes(t, want)
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ckpt")

	got, rep, err := DistCampaign(cfg, PipeWorkers(2), DistOptions{LeaseSets: 5, Checkpoint: full})
	if err != nil {
		t.Fatal(err)
	}
	if gotB := resultBytes(t, got); string(gotB) != string(wantB) {
		t.Fatal("checkpointed run diverged from single-process bytes")
	}
	if rep.ReplayedSets != 0 {
		t.Fatalf("fresh run replayed %d sets", rep.ReplayedSets)
	}

	// Restart over the complete journal: everything replays, nothing runs.
	total := len(cfg.Utils) * cfg.SetsPerPoint
	got, rep, err = DistCampaign(cfg, PipeWorkers(2), DistOptions{LeaseSets: 5, Checkpoint: full})
	if err != nil {
		t.Fatal(err)
	}
	if gotB := resultBytes(t, got); string(gotB) != string(wantB) {
		t.Fatal("full replay diverged from single-process bytes")
	}
	if rep.ReplayedSets != total || rep.Leases != 0 {
		t.Fatalf("full replay: %d sets replayed, %d leases granted; want %d and 0", rep.ReplayedSets, rep.Leases, total)
	}

	// Restart over a prefix — what a coordinator killed mid-run leaves
	// behind — plus a torn final line, the signature of dying inside an
	// append. The torn tail must be dropped and its lease re-run.
	lines := journalLines(t, full)
	partial := filepath.Join(dir, "partial.ckpt")
	cut := 1 + (len(lines)-1)/2
	var pb []byte
	for _, l := range lines[:cut] {
		pb = append(pb, l...)
	}
	pb = append(pb, []byte(`{"ui":0,"lo":`)...) // torn tail, no newline
	if err := os.WriteFile(partial, pb, 0o644); err != nil {
		t.Fatal(err)
	}
	got, rep, err = DistCampaign(cfg, PipeWorkers(2), DistOptions{LeaseSets: 5, Checkpoint: partial})
	if err != nil {
		t.Fatal(err)
	}
	if gotB := resultBytes(t, got); string(gotB) != string(wantB) {
		t.Fatal("partial replay diverged from single-process bytes")
	}
	if rep.ReplayedSets == 0 || rep.ReplayedSets >= total || rep.Leases == 0 {
		t.Fatalf("partial replay: %d sets replayed, %d leases granted; want both in between", rep.ReplayedSets, rep.Leases)
	}
	// And the journal the resumed run left behind must itself replay
	// the whole campaign: the torn tail was truncated, the gaps filled.
	_, rep, err = DistCampaign(cfg, PipeWorkers(1), DistOptions{LeaseSets: 5, Checkpoint: partial})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplayedSets != total || rep.Leases != 0 {
		t.Fatalf("healed journal: %d sets replayed, %d leases granted; want %d and 0", rep.ReplayedSets, rep.Leases, total)
	}
}

// TestDistCampaignCheckpointRejects pins the journal's guard rails: a
// journal from a different campaign configuration and corruption
// anywhere but the final line are hard errors, not silent re-runs.
func TestDistCampaignCheckpointRejects(t *testing.T) {
	cfg := smallCampaign()
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if _, _, err := DistCampaign(cfg, PipeWorkers(1), DistOptions{LeaseSets: 5, Checkpoint: path}); err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.Seed++
	if _, _, err := DistCampaign(other, PipeWorkers(1), DistOptions{LeaseSets: 5, Checkpoint: path}); err == nil {
		t.Fatal("journal of a different campaign was accepted")
	}

	lines := journalLines(t, path)
	corrupt := filepath.Join(dir, "corrupt.ckpt")
	var cb []byte
	for i, l := range lines {
		if i == 2 {
			cb = append(cb, []byte("not json\n")...)
		}
		cb = append(cb, l...)
	}
	if err := os.WriteFile(corrupt, cb, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DistCampaign(cfg, PipeWorkers(1), DistOptions{LeaseSets: 5, Checkpoint: corrupt}); err == nil {
		t.Fatal("mid-file corruption was accepted")
	}

	outside := filepath.Join(dir, "outside.ckpt")
	ob := append([]byte{}, lines[0]...)
	ob = append(ob, []byte(`{"ui":999,"lo":0,"hi":1,"v":[0]}`+"\n")...)
	if err := os.WriteFile(outside, ob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DistCampaign(cfg, PipeWorkers(1), DistOptions{LeaseSets: 5, Checkpoint: outside}); err == nil {
		t.Fatal("record outside the campaign grid was accepted")
	}
}

// TestRemainingWork pins the replay set-arithmetic, overlaps included
// (two coordinator generations can journal the same lease).
func TestRemainingWork(t *testing.T) {
	cfg := CampaignConfig{Utils: []float64{0.5, 0.6}, SetsPerPoint: 10}
	records := []ckptRecord{
		{UI: 0, Lo: 2, Hi: 5},
		{UI: 0, Lo: 4, Hi: 7}, // overlaps the previous record
		{UI: 1, Lo: 0, Hi: 10},
	}
	fresh, replayed := remainingWork(&cfg, records)
	if replayed != 5+10 {
		t.Fatalf("replayed %d sets, want 15", replayed)
	}
	want := []spanWork{{ui: 0, lo: 0, hi: 2}, {ui: 0, lo: 7, hi: 10}}
	if len(fresh) != len(want) {
		t.Fatalf("fresh spans %+v, want %+v", fresh, want)
	}
	for i := range want {
		if fresh[i] != want[i] {
			t.Fatalf("fresh[%d] = %+v, want %+v", i, fresh[i], want[i])
		}
	}
}
