package expt

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obsv"
)

// This file is the coordinator side of the distributed campaign runner:
// DistCampaign shards one expt.Campaign across worker processes (or any
// set of byte-stream connections) and merges their partial verdicts
// into a CampaignResult that is byte-identical to the single-process
// Campaign on the same CampaignConfig.
//
// Why byte-identity holds: every (utilization point ui, set i) draws
// its workload from the keyed stream gen.SimulationKey{Seed, 0, ui, i}
// — a pure function of the grid coordinates — and its verdicts under
// every (panel, f) configuration are a pure function of that draw and
// the configuration. The coordinator merges each result into the
// verdict vector at the set's absolute index, and the final reduction
// counts exact integer acceptances per configuration. No step depends
// on which worker evaluated a set, how the grid was cut into leases,
// when results arrived, how many times a lease was reassigned, how
// many leases were in flight, how the adaptive sizer resized grants,
// or which protocol carried the bytes — so the merged CampaignResult
// (and hence any serialization of it) equals the single-process run
// bit for bit. Checkpoint replay preserves the same argument: a
// journaled lease holds the exact verdict words the worker computed,
// merged at the same absolute indexes.
//
// Two wire protocols carry the lease traffic. The default is the
// length-prefixed binary frame protocol of wire.go, driven with a
// pipelined window of in-flight leases per worker (pipeline.go). The
// legacy protocol — one JSON object per line, strict request-response
// — is kept as the differential reference (WireJSON), exactly like
// Fig3Ref and KillingPFHLONaive shadow their fast paths; the workers
// auto-detect which one a coordinator speaks.

// distMsg is the single wire message shape of the legacy JSON lease
// protocol; T selects which fields are meaningful.
type distMsg struct {
	// T is "hello", "ready", "lease", "result", "error" or "done".
	T string `json:"t"`
	// Config rides on hello.
	Config *CampaignConfig `json:"config,omitempty"`
	// Manifest rides on ready.
	Manifest *obsv.Manifest `json:"manifest,omitempty"`
	// Lease identifies the lease on lease/result/error; UI, Lo, Hi are
	// its half-open set range [Lo, Hi) at utilization index UI. Not
	// omitempty: zero is a valid lease id, index and bound.
	Lease int `json:"lease"`
	UI    int `json:"ui"`
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	// V rides on result: one packed word per set in [Lo, Hi), bit 2c
	// the baseline verdict and bit 2c+1 the adapted verdict of
	// configuration c (panel-major, as in campaignRunner.evalRange).
	V []uint64 `json:"v,omitempty"`
	// Err rides on error.
	Err string `json:"err,omitempty"`
}

// maxDistConfigs bounds the panel × failure-probability cross-product a
// result word can carry: 2 bits per configuration in a uint64, with the
// top two bits left unused so the packed value stays in int64 range for
// any JSON consumer. The paper's figure needs 8.
const maxDistConfigs = 31

// WireProto selects the lease protocol's encoding.
type WireProto int

const (
	// WireBinary is the default: length-prefixed frames, varint-delta
	// verdict bitmaps, pipelined grants (see wire.go / pipeline.go).
	WireBinary WireProto = iota
	// WireJSON is the legacy line-delimited JSON protocol with strict
	// request-response, kept as the differential reference and as the
	// negotiate-down path for workers that predate frames.
	WireJSON
)

func (p WireProto) String() string {
	if p == WireJSON {
		return "json"
	}
	return "binary"
}

// DistOptions tunes the lease protocol.
type DistOptions struct {
	// LeaseSets is the number of sets per lease (default 64). Smaller
	// leases rebalance and reassign at finer grain; larger leases
	// amortize the round-trip. The merged result is identical for any
	// value — lease shape is a scheduling knob, like the pool's chunk
	// size.
	LeaseSets int
	// LeaseTimeout, when positive, is the deadline for the handshake
	// and for result progress: a worker holding leases that produces
	// no result for this long is abandoned — its connection closed so
	// a late result can never merge — and its leases are reassigned.
	LeaseTimeout time.Duration
	// Window is the number of leases the coordinator keeps in flight
	// per worker on the binary protocol (default 2, double-buffered:
	// the worker always has the next lease queued while evaluating the
	// current one, so it never idles on a round-trip). WireJSON is
	// strict request-response and ignores Window.
	Window int
	// Proto selects the wire protocol; the zero value is WireBinary.
	Proto WireProto
	// TargetLeaseLatency, when positive, enables adaptive lease sizing:
	// the coordinator tracks each worker's observed per-set service
	// time and resizes that worker's next grant toward this duration,
	// clamped to [MinLeaseSets, MaxLeaseSets]. Slow or distant (WAN)
	// workers then hold small leases that reassign cheaply, while fast
	// local workers amortize the round-trip over large ones. Sizing is
	// a pure scheduling knob: the merged bytes are identical under any
	// trajectory.
	TargetLeaseLatency time.Duration
	// MinLeaseSets / MaxLeaseSets clamp adaptive sizing (defaults:
	// max(1, LeaseSets/4) and 8×LeaseSets).
	MinLeaseSets int
	MaxLeaseSets int
	// Checkpoint, when non-empty, is the path of the campaign's
	// checkpoint journal: the coordinator appends one record per
	// completed lease (schema ftmc/dist-ckpt/v1, see distckpt.go) and
	// on restart replays the journal, re-queuing only unfinished work.
	Checkpoint string
	// CrashAfterLeases is fault injection for the restart path: when
	// positive (and Checkpoint is set), the coordinator process exits
	// with status 3 after journaling that many leases — the
	// kill-the-coordinator half of the checkpoint/restart smoke test.
	// Never set it outside tests.
	CrashAfterLeases int
}

// withDefaults resolves the option defaults in one place.
func (o DistOptions) withDefaults() DistOptions {
	if o.LeaseSets <= 0 {
		o.LeaseSets = 64
	}
	if o.Window <= 0 {
		o.Window = 2
	}
	if o.Proto == WireJSON {
		o.Window = 1 // strict request-response
	}
	if o.MinLeaseSets <= 0 {
		o.MinLeaseSets = o.LeaseSets / 4
		if o.MinLeaseSets < 1 {
			o.MinLeaseSets = 1
		}
	}
	if o.MaxLeaseSets <= 0 {
		o.MaxLeaseSets = 8 * o.LeaseSets
	}
	if o.MaxLeaseSets < o.MinLeaseSets {
		o.MaxLeaseSets = o.MinLeaseSets
	}
	return o
}

// DistReport is the coordinator's account of one distributed run.
type DistReport struct {
	// Workers is the number of connections the run started with;
	// WorkerFailures how many were lost (handshake failure, transport
	// error, worker-reported error or lease deadline).
	Workers        int `json:"workers"`
	WorkerFailures int `json:"worker_failures"`
	// Leases is the number of lease grants including regrants;
	// Reassigned counts requeues after a worker loss.
	Leases     int `json:"leases"`
	Reassigned int `json:"reassigned"`
	// Proto names the wire protocol the run used.
	Proto string `json:"proto"`
	// BytesOut / BytesIn / FramesOut / FramesIn count the coordinator's
	// lease-protocol traffic across all workers (handshake included).
	// BytesIn/Leases is the wire cost of one result — the number the
	// bench's wire section tracks.
	BytesOut  uint64 `json:"bytes_out"`
	BytesIn   uint64 `json:"bytes_in"`
	FramesOut uint64 `json:"frames_out"`
	FramesIn  uint64 `json:"frames_in"`
	// ReplayedSets counts sets restored from the checkpoint journal
	// instead of granted to workers.
	ReplayedSets int `json:"replayed_sets"`
	// Manifest records the provenance of every participating process;
	// its Mismatches field surfaces workers built from a different
	// toolchain or revision than the coordinator.
	Manifest obsv.MergedManifest `json:"manifest"`
}

// lease is one unit of assigned work: sets [lo, hi) of utilization
// point ui. The id is unique per grant (regrants get fresh ids), so a
// pipelined driver can match results to grants unambiguously.
type lease struct {
	id, ui, lo, hi int
}

// spanWork is an uncarved interval of the campaign grid awaiting
// grant: sets [lo, hi) of point ui. Checkpoint replay can fragment a
// point into several intervals.
type spanWork struct {
	ui, lo, hi int
}

// leaseTable is the coordinator's scheduler state: uncarved grid
// intervals, a queue of abandoned leases awaiting regrant, the count
// of leases currently held by workers, and the count of workers still
// alive. Fresh leases are carved on demand at the size the driver
// requests — that is what lets adaptive sizing resize grants without
// precommitting a partition — while abandoned leases are regranted
// verbatim (their exact range is what the failed worker owed).
type leaseTable struct {
	mu       sync.Mutex
	cond     *sync.Cond
	fresh    []spanWork
	freshAt  int
	requeued []lease
	out      int // leases granted and not yet completed or requeued
	alive    int // drivers that have not failed or finished
	grants   int
	requeue  int
	err      error
}

func newLeaseTable(fresh []spanWork, workers int) *leaseTable {
	t := &leaseTable{fresh: fresh, alive: workers}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// grantLocked carves or regrants up to max sets; callers hold mu.
func (t *leaseTable) grantLocked(max int) (lease, bool) {
	if max < 1 {
		max = 1
	}
	if len(t.requeued) > 0 {
		l := t.requeued[0]
		t.requeued = t.requeued[1:]
		l.id = t.grants
		t.grants++
		t.out++
		return l, true
	}
	for t.freshAt < len(t.fresh) {
		s := &t.fresh[t.freshAt]
		if s.lo >= s.hi {
			t.freshAt++
			continue
		}
		hi := s.lo + max
		if hi > s.hi {
			hi = s.hi
		}
		l := lease{id: t.grants, ui: s.ui, lo: s.lo, hi: hi}
		s.lo = hi
		t.grants++
		t.out++
		return l, true
	}
	return lease{}, false
}

// remainingLocked reports whether any work is ungranted or in flight.
func (t *leaseTable) remainingLocked() bool {
	if len(t.requeued) > 0 || t.out > 0 {
		return true
	}
	for i := t.freshAt; i < len(t.fresh); i++ {
		if t.fresh[i].lo < t.fresh[i].hi {
			return true
		}
	}
	return false
}

// next grants a lease of up to max sets. ok is false when nothing is
// grantable: then done reports whether every lease has completed (the
// run is over) and err is non-nil when the run is lost (every worker
// failed with leases outstanding). With block set, next waits for a
// grantable lease instead of returning ok=false while other workers
// still hold leases — the mode a driver with no leases of its own in
// flight uses.
func (t *leaseTable) next(max int, block bool) (l lease, ok, done bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if t.err != nil {
			return lease{}, false, false, t.err
		}
		if l, ok := t.grantLocked(max); ok {
			return l, true, false, nil
		}
		if t.out == 0 {
			return lease{}, false, true, nil
		}
		if !block {
			return lease{}, false, false, nil
		}
		// Leases are out on other workers; wait in case one requeues.
		t.cond.Wait()
	}
}

// complete marks a granted lease merged.
func (t *leaseTable) complete() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.out--
	if t.out == 0 && !t.remainingLocked() {
		t.cond.Broadcast()
	}
}

// abandon returns a granted lease to the queue (worker lost) and wakes
// idle drivers to pick it up.
func (t *leaseTable) abandon(l lease) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.out--
	t.requeued = append(t.requeued, l)
	t.requeue++
	t.cond.Broadcast()
}

// poison fails the whole run: every driver sees err from its next
// call. Used for coordinator-side losses (checkpoint write failure)
// that no amount of lease reassignment can route around.
func (t *leaseTable) poison(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		t.err = err
	}
	t.cond.Broadcast()
}

// driverExit records a driver leaving; failed drivers that leave work
// behind with no one alive to take it poison the table.
func (t *leaseTable) driverExit() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.alive--
	if t.alive == 0 && t.remainingLocked() && t.err == nil {
		t.err = errors.New("expt: every distributed worker failed with leases outstanding")
	}
	t.cond.Broadcast()
}

// distDriver is the shared coordinator state: one driver goroutine
// owns one worker connection end to end; the verdict vector, lease
// table and journal are shared across drivers.
type distDriver struct {
	table     *leaseTable
	cfg       *CampaignConfig
	nCfg      int
	verdicts  []verdict
	opt       DistOptions
	helloJSON []byte // the campaign config, marshaled once for every hello
	journal   *distJournal

	mu        sync.Mutex // guards the fields below across drivers
	manifests []obsv.Manifest
	failures  int
	bytesOut  uint64
	bytesIn   uint64
	framesOut uint64
	framesIn  uint64
}

// mergeLease unpacks one lease's verdict words at their absolute
// indexes. Safe to call concurrently for distinct leases: ranges of
// live grants never overlap.
func (d *distDriver) mergeLease(l lease, words []uint64) {
	for j, w := range words {
		set := l.lo + j
		base := (l.ui*d.cfg.SetsPerPoint + set) * d.nCfg
		for c := 0; c < d.nCfg; c++ {
			d.verdicts[base+c] = verdict{
				base:  w>>(2*uint(c))&1 == 1,
				adapt: w>>(2*uint(c)+1)&1 == 1,
			}
		}
	}
}

// fail counts a lost worker.
func (d *distDriver) fail() {
	d.mu.Lock()
	d.failures++
	d.mu.Unlock()
	exptView.Get().distWorkerFailures.Inc()
}

// addManifest records one worker's ready manifest.
func (d *distDriver) addManifest(m obsv.Manifest) {
	d.mu.Lock()
	d.manifests = append(d.manifests, m)
	d.mu.Unlock()
}

// addTraffic folds one connection's byte/frame accounting into the
// run totals (and the expt.dist.* counters).
func (d *distDriver) addTraffic(out, in uint64, fout, fin uint64) {
	d.mu.Lock()
	d.bytesOut += out
	d.bytesIn += in
	d.framesOut += fout
	d.framesIn += fin
	d.mu.Unlock()
	m := exptView.Get()
	m.distBytesOut.Add(out)
	m.distBytesIn.Add(in)
	m.distFramesOut.Add(fout)
	m.distFramesIn.Add(fin)
}

// DistCampaign runs cfg sharded across the given worker connections —
// each speaking the ServeWorker protocol, typically the stdio of a
// cmd/ftmc-worker subprocess (StartWorkerProcs) or a TCP connection
// (AcceptWorkers) — and merges the partial results. The returned
// CampaignResult is byte-identical to Campaign(cfg) for any number of
// connections, any lease sizing (fixed or adaptive), any pipelining
// window, either wire protocol, any worker loss short of all of them,
// any FTMC_WORKERS setting inside the workers, and any
// checkpoint/restart cut (see the file comment for why). Connections
// are closed before returning.
func DistCampaign(cfg CampaignConfig, conns []io.ReadWriteCloser, opt DistOptions) (CampaignResult, DistReport, error) {
	if err := cfg.Validate(); err != nil {
		return CampaignResult{}, DistReport{}, err
	}
	if len(conns) == 0 {
		return CampaignResult{}, DistReport{}, errors.New("expt: distributed campaign needs at least one worker connection")
	}
	nCfg := len(cfg.Panels) * len(cfg.FailProbs)
	if nCfg > maxDistConfigs {
		return CampaignResult{}, DistReport{}, fmt.Errorf(
			"expt: %d panel × failure-probability configurations exceed the wire format's %d", nCfg, maxDistConfigs)
	}
	opt = opt.withDefaults()

	helloJSON, err := json.Marshal(&cfg)
	if err != nil {
		return CampaignResult{}, DistReport{}, err
	}
	d := &distDriver{
		cfg:       &cfg,
		nCfg:      nCfg,
		verdicts:  make([]verdict, len(cfg.Utils)*cfg.SetsPerPoint*nCfg),
		opt:       opt,
		helloJSON: helloJSON,
	}

	// Restore journaled work first: replayed leases merge straight into
	// the verdict vector and only the gaps go back on the table.
	replayedSets := 0
	var fresh []spanWork
	if opt.Checkpoint != "" {
		journal, records, err := openDistJournal(opt.Checkpoint, helloJSON, &cfg, nCfg)
		if err != nil {
			return CampaignResult{}, DistReport{}, err
		}
		journal.crashAfter = opt.CrashAfterLeases
		d.journal = journal
		defer journal.Close()
		for _, r := range records {
			d.mergeLease(lease{ui: r.UI, lo: r.Lo, hi: r.Hi}, r.V)
		}
		fresh, replayedSets = remainingWork(&cfg, records)
		exptView.Get().distReplayedSets.Add(uint64(replayedSets))
	} else {
		for ui := range cfg.Utils {
			fresh = append(fresh, spanWork{ui: ui, lo: 0, hi: cfg.SetsPerPoint})
		}
	}
	d.table = newLeaseTable(fresh, len(conns))

	var wg sync.WaitGroup
	for _, conn := range conns {
		wg.Add(1)
		go func(conn io.ReadWriteCloser) {
			defer wg.Done()
			if opt.Proto == WireJSON {
				d.runWorkerJSON(conn)
			} else {
				d.runWorkerWire(conn)
			}
		}(conn)
	}
	wg.Wait()

	rep := DistReport{
		Workers:        len(conns),
		WorkerFailures: d.failures,
		Leases:         d.table.grants,
		Reassigned:     d.table.requeue,
		Proto:          opt.Proto.String(),
		BytesOut:       d.bytesOut,
		BytesIn:        d.bytesIn,
		FramesOut:      d.framesOut,
		FramesIn:       d.framesIn,
		ReplayedSets:   replayedSets,
		Manifest:       obsv.MergeManifests(obsv.NewManifest(), d.manifests),
	}
	m := exptView.Get()
	m.distLeases.Add(uint64(rep.Leases))
	m.distReassigned.Add(uint64(rep.Reassigned))
	m.distWorkerFailures.Add(uint64(rep.WorkerFailures))
	if err := d.table.err; err != nil {
		return CampaignResult{}, rep, err
	}

	res := newEmptyResult(cfg)
	stride := cfg.SetsPerPoint * nCfg
	for ui := range cfg.Utils {
		reduceCampaignPoint(&res, ui, d.verdicts[ui*stride:(ui+1)*stride])
	}
	return res, rep, nil
}

// countingConn wraps a legacy-protocol connection with the byte
// accounting the frame codec provides natively. The counters are
// atomic: the decoder goroutine may still be inside a Read when the
// driver's deferred accounting reads them.
type countingConn struct {
	io.ReadWriteCloser
	in, out atomic.Uint64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.ReadWriteCloser.Read(p)
	c.in.Add(uint64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.ReadWriteCloser.Write(p)
	c.out.Add(uint64(n))
	return n, err
}

// runWorkerJSON drives one connection over the legacy JSON protocol:
// handshake, then strict request-response lease grants until the table
// drains or the worker is lost. On any failure the connection is
// closed BEFORE the lease is requeued, so a result that arrives after
// abandonment has nowhere to land — duplicate merges are impossible by
// construction. Kept verbatim in spirit as the differential reference
// for the pipelined binary driver.
func (d *distDriver) runWorkerJSON(rwc io.ReadWriteCloser) {
	defer d.table.driverExit()
	conn := &countingConn{ReadWriteCloser: rwc}
	defer func() {
		// JSON "frames" are Encode calls / decoded objects; messages in
		// equals messages out on this strict protocol, one per Encode.
		d.addTraffic(conn.out.Load(), conn.in.Load(), 0, 0)
	}()
	defer conn.Close()

	enc := json.NewEncoder(conn)
	msgs := make(chan distMsg)
	ack := make(chan struct{})
	rerr := make(chan error, 1)
	quit := make(chan struct{})
	defer close(quit)
	go func() {
		dec := json.NewDecoder(conn)
		var m distMsg
		for {
			// Reuse the verdict slice across leases: the strict
			// request-response protocol guarantees at most one undecoded
			// message per round-trip, and the ack below keeps the decoder
			// from overwriting V while the driver is still merging it.
			m = distMsg{V: m.V[:0]}
			if err := dec.Decode(&m); err != nil {
				rerr <- err
				return
			}
			select {
			case msgs <- m:
			case <-quit:
				return
			}
			select {
			case <-ack:
			case <-quit:
				return
			}
		}
	}()
	recv := func() (distMsg, error) {
		var deadline <-chan time.Time
		if d.opt.LeaseTimeout > 0 {
			t := time.NewTimer(d.opt.LeaseTimeout)
			defer t.Stop()
			deadline = t.C
		}
		select {
		case m := <-msgs:
			return m, nil
		case err := <-rerr:
			return distMsg{}, err
		case <-deadline:
			return distMsg{}, fmt.Errorf("expt: lease deadline (%v) exceeded", d.opt.LeaseTimeout)
		}
	}
	release := func() {
		select {
		case ack <- struct{}{}:
		case <-quit:
		}
	}

	if err := enc.Encode(distMsg{T: "hello", Config: d.cfg}); err != nil {
		d.fail()
		return
	}
	ready, err := recv()
	if err != nil || ready.T != "ready" || ready.Manifest == nil {
		d.fail()
		return
	}
	d.addManifest(*ready.Manifest)
	release()

	for {
		l, ok, _, err := d.table.next(d.opt.LeaseSets, true)
		if err != nil || !ok {
			enc.Encode(distMsg{T: "done"}) // best effort; the worker may be gone
			return
		}
		if err := d.serveLease(enc, recv, release, l); err != nil {
			conn.Close() // close first: a late result must never merge
			d.table.abandon(l)
			d.fail()
			return
		}
		d.table.complete()
	}
}

// serveLease grants one lease and merges its result into the verdict
// vector at the sets' absolute indexes.
func (d *distDriver) serveLease(enc *json.Encoder, recv func() (distMsg, error), release func(), l lease) error {
	sp := exptView.Get().distLeaseNs.Start()
	exptView.Get().distLeaseSets.Observe(int64(l.hi - l.lo))
	if err := enc.Encode(distMsg{T: "lease", Lease: l.id, UI: l.ui, Lo: l.lo, Hi: l.hi}); err != nil {
		return err
	}
	m, err := recv()
	if err != nil {
		return err
	}
	defer release()
	if m.T == "error" {
		return fmt.Errorf("expt: worker failed lease %d: %s", l.id, m.Err)
	}
	if m.T != "result" || m.Lease != l.id {
		return fmt.Errorf("expt: protocol violation: got %q (lease %d) awaiting result of lease %d", m.T, m.Lease, l.id)
	}
	if len(m.V) != l.hi-l.lo {
		return fmt.Errorf("expt: lease %d: got %d result words, want %d", l.id, len(m.V), l.hi-l.lo)
	}
	d.mergeLease(l, m.V)
	if err := d.journal.append(l, m.V); err != nil {
		d.table.poison(err) // coordinator-side loss, not this worker's fault
		return err
	}
	sp.End()
	return nil
}
