package expt

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/obsv"
)

// This file is the coordinator side of the distributed campaign runner:
// DistCampaign shards one expt.Campaign across worker processes (or any
// set of byte-stream connections) and merges their partial verdicts
// into a CampaignResult that is byte-identical to the single-process
// Campaign on the same CampaignConfig.
//
// Why byte-identity holds: every (utilization point ui, set i) draws
// its workload from the keyed stream gen.SimulationKey{Seed, 0, ui, i}
// — a pure function of the grid coordinates — and its verdicts under
// every (panel, f) configuration are a pure function of that draw and
// the configuration. The coordinator merges each result into the
// verdict vector at the set's absolute index, and the final reduction
// counts exact integer acceptances per configuration. No step depends
// on which worker evaluated a set, how the grid was cut into leases,
// when results arrived, or how many times a lease was reassigned — so
// the merged CampaignResult (and hence any serialization of it) equals
// the single-process run bit for bit.

// Wire protocol: one JSON object per line in each direction
// (json.Encoder / json.Decoder framing), strict request-response per
// connection. Coordinator sends hello{config}, worker answers
// ready{manifest}; then the coordinator sends lease{id, ui, lo, hi}
// and the worker answers result{id, v} (or error{err}) until the
// coordinator sends done. The stdio transport of cmd/ftmc-worker and
// the TCP transport of AcceptWorkers/DialWorkers carry the same bytes.

// distMsg is the single wire message shape of the lease protocol; T
// selects which fields are meaningful.
type distMsg struct {
	// T is "hello", "ready", "lease", "result", "error" or "done".
	T string `json:"t"`
	// Config rides on hello.
	Config *CampaignConfig `json:"config,omitempty"`
	// Manifest rides on ready.
	Manifest *obsv.Manifest `json:"manifest,omitempty"`
	// Lease identifies the lease on lease/result/error; UI, Lo, Hi are
	// its half-open set range [Lo, Hi) at utilization index UI. Not
	// omitempty: zero is a valid lease id, index and bound.
	Lease int `json:"lease"`
	UI    int `json:"ui"`
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	// V rides on result: one packed word per set in [Lo, Hi), bit 2c
	// the baseline verdict and bit 2c+1 the adapted verdict of
	// configuration c (panel-major, as in campaignRunner.evalRange).
	V []uint64 `json:"v,omitempty"`
	// Err rides on error.
	Err string `json:"err,omitempty"`
}

// maxDistConfigs bounds the panel × failure-probability cross-product a
// result word can carry: 2 bits per configuration in a uint64, with the
// top two bits left unused so the packed value stays in int64 range for
// any JSON consumer. The paper's figure needs 8.
const maxDistConfigs = 31

// DistOptions tunes the lease protocol.
type DistOptions struct {
	// LeaseSets is the number of sets per lease (default 64). Smaller
	// leases rebalance and reassign at finer grain; larger leases
	// amortize the round-trip. The merged result is identical for any
	// value — lease shape is a scheduling knob, like the pool's chunk
	// size.
	LeaseSets int
	// LeaseTimeout, when positive, is the deadline for one lease's
	// round-trip (and for the hello/ready handshake). A worker that
	// blows the deadline is abandoned — its connection closed so a late
	// result can never merge — and its lease is reassigned.
	LeaseTimeout time.Duration
}

// DistReport is the coordinator's account of one distributed run.
type DistReport struct {
	// Workers is the number of connections the run started with;
	// WorkerFailures how many were lost (handshake failure, transport
	// error, worker-reported error or lease deadline).
	Workers        int `json:"workers"`
	WorkerFailures int `json:"worker_failures"`
	// Leases is the number of lease grants including regrants;
	// Reassigned counts requeues after a worker loss.
	Leases     int `json:"leases"`
	Reassigned int `json:"reassigned"`
	// Manifest records the provenance of every participating process;
	// its Mismatches field surfaces workers built from a different
	// toolchain or revision than the coordinator.
	Manifest obsv.MergedManifest `json:"manifest"`
}

// lease is one unit of assignable work: sets [lo, hi) of utilization
// point ui.
type lease struct {
	id, ui, lo, hi int
}

// leaseTable is the coordinator's scheduler state: a queue of pending
// leases, the count of leases currently held by workers, and the count
// of workers still alive. Drivers block in next until a lease is
// available, everything is merged, or the run is lost.
type leaseTable struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []lease
	out     int // leases granted and not yet completed or requeued
	alive   int // drivers that have not failed or finished
	grants  int
	requeue int
	err     error
}

func newLeaseTable(leases []lease, workers int) *leaseTable {
	t := &leaseTable{pending: leases, alive: workers}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// next blocks until a lease is grantable. ok is false when every lease
// has completed; err is non-nil when the run is lost (every worker
// failed with leases outstanding).
func (t *leaseTable) next() (l lease, ok bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if t.err != nil {
			return lease{}, false, t.err
		}
		if len(t.pending) > 0 {
			l = t.pending[0]
			t.pending = t.pending[1:]
			t.out++
			t.grants++
			return l, true, nil
		}
		if t.out == 0 {
			return lease{}, false, nil
		}
		// Leases are out on other workers; wait in case one requeues.
		t.cond.Wait()
	}
}

// complete marks a granted lease merged.
func (t *leaseTable) complete() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.out--
	if t.out == 0 && len(t.pending) == 0 {
		t.cond.Broadcast()
	}
}

// abandon returns a granted lease to the queue (worker lost) and wakes
// idle drivers to pick it up.
func (t *leaseTable) abandon(l lease) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.out--
	t.pending = append(t.pending, l)
	t.requeue++
	t.cond.Broadcast()
}

// driverExit records a driver leaving; failed drivers that leave work
// behind with no one alive to take it poison the table.
func (t *leaseTable) driverExit() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.alive--
	if t.alive == 0 && (len(t.pending) > 0 || t.out > 0) && t.err == nil {
		t.err = errors.New("expt: every distributed worker failed with leases outstanding")
	}
	t.cond.Broadcast()
}

// distDriver is the per-connection coordinator state: one driver
// goroutine owns one worker connection end to end.
type distDriver struct {
	table    *leaseTable
	cfg      *CampaignConfig
	nCfg     int
	verdicts []verdict
	opt      DistOptions

	mu        sync.Mutex // guards manifests and failures across drivers
	manifests []obsv.Manifest
	failures  int
}

// DistCampaign runs cfg sharded across the given worker connections —
// each speaking the ServeWorker protocol, typically the stdio of a
// cmd/ftmc-worker subprocess (StartWorkerProcs) or a TCP connection
// (AcceptWorkers) — and merges the partial results. The returned
// CampaignResult is byte-identical to Campaign(cfg) for any number of
// connections, any lease size, any worker loss short of all of them,
// and any FTMC_WORKERS setting inside the workers (see the file
// comment for why). Connections are closed before returning.
func DistCampaign(cfg CampaignConfig, conns []io.ReadWriteCloser, opt DistOptions) (CampaignResult, DistReport, error) {
	if err := cfg.Validate(); err != nil {
		return CampaignResult{}, DistReport{}, err
	}
	if len(conns) == 0 {
		return CampaignResult{}, DistReport{}, errors.New("expt: distributed campaign needs at least one worker connection")
	}
	nCfg := len(cfg.Panels) * len(cfg.FailProbs)
	if nCfg > maxDistConfigs {
		return CampaignResult{}, DistReport{}, fmt.Errorf(
			"expt: %d panel × failure-probability configurations exceed the wire format's %d", nCfg, maxDistConfigs)
	}
	if opt.LeaseSets <= 0 {
		opt.LeaseSets = 64
	}

	var leases []lease
	for ui := range cfg.Utils {
		for lo := 0; lo < cfg.SetsPerPoint; lo += opt.LeaseSets {
			hi := lo + opt.LeaseSets
			if hi > cfg.SetsPerPoint {
				hi = cfg.SetsPerPoint
			}
			leases = append(leases, lease{id: len(leases), ui: ui, lo: lo, hi: hi})
		}
	}

	d := &distDriver{
		table:    newLeaseTable(leases, len(conns)),
		cfg:      &cfg,
		nCfg:     nCfg,
		verdicts: make([]verdict, len(cfg.Utils)*cfg.SetsPerPoint*nCfg),
		opt:      opt,
	}
	var wg sync.WaitGroup
	for _, conn := range conns {
		wg.Add(1)
		go func(conn io.ReadWriteCloser) {
			defer wg.Done()
			d.runWorker(conn)
		}(conn)
	}
	wg.Wait()

	rep := DistReport{
		Workers:        len(conns),
		WorkerFailures: d.failures,
		Leases:         d.table.grants,
		Reassigned:     d.table.requeue,
		Manifest:       obsv.MergeManifests(obsv.NewManifest(), d.manifests),
	}
	m := exptView.Get()
	m.distLeases.Add(uint64(rep.Leases))
	m.distReassigned.Add(uint64(rep.Reassigned))
	m.distWorkerFailures.Add(uint64(rep.WorkerFailures))
	if err := d.table.err; err != nil {
		return CampaignResult{}, rep, err
	}

	res := newEmptyResult(cfg)
	stride := cfg.SetsPerPoint * nCfg
	for ui := range cfg.Utils {
		reduceCampaignPoint(&res, ui, d.verdicts[ui*stride:(ui+1)*stride])
	}
	return res, rep, nil
}

// runWorker drives one connection: handshake, then grant leases and
// merge results until the table drains or the worker is lost. On any
// failure the connection is closed BEFORE the lease is requeued, so a
// result that arrives after abandonment has nowhere to land —
// duplicate merges are impossible by construction.
func (d *distDriver) runWorker(conn io.ReadWriteCloser) {
	defer d.table.driverExit()
	defer conn.Close()

	enc := json.NewEncoder(conn)
	msgs := make(chan distMsg)
	rerr := make(chan error, 1)
	quit := make(chan struct{})
	defer close(quit)
	go func() {
		dec := json.NewDecoder(conn)
		for {
			var m distMsg
			if err := dec.Decode(&m); err != nil {
				rerr <- err
				return
			}
			select {
			case msgs <- m:
			case <-quit:
				return
			}
		}
	}()
	recv := func() (distMsg, error) {
		var deadline <-chan time.Time
		if d.opt.LeaseTimeout > 0 {
			t := time.NewTimer(d.opt.LeaseTimeout)
			defer t.Stop()
			deadline = t.C
		}
		select {
		case m := <-msgs:
			return m, nil
		case err := <-rerr:
			return distMsg{}, err
		case <-deadline:
			return distMsg{}, fmt.Errorf("expt: lease deadline (%v) exceeded", d.opt.LeaseTimeout)
		}
	}
	fail := func() {
		d.mu.Lock()
		d.failures++
		d.mu.Unlock()
		exptView.Get().distWorkerFailures.Inc()
	}

	if err := enc.Encode(distMsg{T: "hello", Config: d.cfg}); err != nil {
		fail()
		return
	}
	ready, err := recv()
	if err != nil || ready.T != "ready" || ready.Manifest == nil {
		fail()
		return
	}
	d.mu.Lock()
	d.manifests = append(d.manifests, *ready.Manifest)
	d.mu.Unlock()

	for {
		l, ok, err := d.table.next()
		if err != nil || !ok {
			enc.Encode(distMsg{T: "done"}) // best effort; the worker may be gone
			return
		}
		if err := d.serveLease(enc, recv, l); err != nil {
			conn.Close() // close first: a late result must never merge
			d.table.abandon(l)
			fail()
			return
		}
		d.table.complete()
	}
}

// serveLease grants one lease and merges its result into the verdict
// vector at the sets' absolute indexes.
func (d *distDriver) serveLease(enc *json.Encoder, recv func() (distMsg, error), l lease) error {
	sp := exptView.Get().distLeaseNs.Start()
	if err := enc.Encode(distMsg{T: "lease", Lease: l.id, UI: l.ui, Lo: l.lo, Hi: l.hi}); err != nil {
		return err
	}
	m, err := recv()
	if err != nil {
		return err
	}
	if m.T == "error" {
		return fmt.Errorf("expt: worker failed lease %d: %s", l.id, m.Err)
	}
	if m.T != "result" || m.Lease != l.id {
		return fmt.Errorf("expt: protocol violation: got %q (lease %d) awaiting result of lease %d", m.T, m.Lease, l.id)
	}
	if len(m.V) != l.hi-l.lo {
		return fmt.Errorf("expt: lease %d: got %d result words, want %d", l.id, len(m.V), l.hi-l.lo)
	}
	for j, w := range m.V {
		set := l.lo + j
		base := (l.ui*d.cfg.SetsPerPoint + set) * d.nCfg
		for c := 0; c < d.nCfg; c++ {
			d.verdicts[base+c] = verdict{
				base:  w>>(2*uint(c))&1 == 1,
				adapt: w>>(2*uint(c)+1)&1 == 1,
			}
		}
	}
	sp.End()
	return nil
}
