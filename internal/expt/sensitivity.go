package expt

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/criticality"
	"repro/internal/gen"
	"repro/internal/prob"
	"repro/internal/safety"
	"repro/internal/stats"
	"repro/internal/task"
)

// These experiments go beyond the paper's figures: a sensitivity sweep
// over the degradation factor df (the paper fixes df = 6 without
// justification) and a robustness study over random Table 4 instances
// (the paper reports a single random FMS draw).

// DFPoint is one df value of the sensitivity sweep.
type DFPoint struct {
	// DF is the degradation factor.
	DF float64
	// Acceptance is the FT-S acceptance ratio at this df.
	Acceptance float64
	// CI is the 95% Wilson interval of the acceptance ratio.
	CI stats.Interval
	// MeanPFHLO averages the achieved pfh(LO) bound over accepted sets
	// (0 when none were accepted).
	MeanPFHLO float64
}

// DFSweep measures how the degradation factor trades schedulability
// against delivered LO service: larger df weakens the degraded-mode
// utilization term U_LO^LO/(df−1) of eq. (12) (more sets fit) while
// thinning the LO service — and, per eq. (7), larger df does not change
// the pfh(LO) bound, which depends on the undegraded ω(1, t).
func DFSweep(hi, lo criticality.Level, u, failProb float64, dfs []float64, setsPerPoint int, seed int64) ([]DFPoint, error) {
	if len(dfs) == 0 || setsPerPoint < 1 {
		return nil, fmt.Errorf("expt: need df values and sets per point")
	}
	for _, df := range dfs {
		if df <= 1 {
			return nil, fmt.Errorf("expt: degradation factor must be > 1, got %g", df)
		}
	}
	params := gen.PaperParams(hi, lo, u, failProb)
	scfg := safety.DefaultConfig()
	// Shared-workload evaluation: set i is drawn once (the drawer matches
	// the allocating generator bit for bit on seed + i, the seeds the
	// per-df sweep used) and walks the whole df axis. The eq. (7) safety
	// verdict is df-independent, so one FTSSafety per set serves every df
	// and only the line-8 schedulability search reruns. Verdicts land in
	// per-(set, df) slots and the Kahan sums accumulate serially in set
	// order per df, keeping each point bit-identical to the independent
	// per-df sweep regardless of worker count.
	type verdict struct {
		ok  bool
		pfh float64
	}
	type dfEval struct {
		drawer *gen.Drawer
		scr    *core.Scratch
		cache  *safety.AdaptationCache
	}
	verdicts := make([]verdict, setsPerPoint*len(dfs))
	evals := make([]*dfEval, Workers())
	err := ForEachWorker(setsPerPoint, fig3Chunk, func(w, i int) error {
		ev := evals[w]
		if ev == nil {
			d, err := gen.NewDrawer(params, 0)
			if err != nil {
				return err
			}
			ev = &dfEval{drawer: d, scr: core.NewScratch()}
			evals[w] = ev
		}
		s, err := ev.drawer.Draw(seed + int64(i))
		if err != nil {
			return nil // degenerate draw: counts as rejected at every df
		}
		hiT, loT := s.ByClass(criticality.HI), s.ByClass(criticality.LO)
		if ev.cache == nil {
			ev.cache = safety.NewAdaptationCache(scfg, hiT, loT)
		} else {
			ev.cache.Reset(scfg, hiT, loT)
		}
		opt := core.Options{Safety: scfg, Mode: safety.Degrade, DF: dfs[0], Cache: ev.cache, Scratch: ev.scr}
		sv, err := core.FTSSafety(s, opt)
		if err != nil {
			return err
		}
		for di, df := range dfs {
			opt.DF = df
			res, err := core.FTSWithSafety(s, opt, sv)
			if err != nil {
				return err
			}
			verdicts[i*len(dfs)+di] = verdict{ok: res.OK, pfh: res.PFHLO}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]DFPoint, 0, len(dfs))
	for di, df := range dfs {
		accepted := 0
		var pfhSum prob.KahanSum
		for i := 0; i < setsPerPoint; i++ {
			v := verdicts[i*len(dfs)+di]
			if v.ok {
				accepted++
				pfhSum.Add(v.pfh)
			}
		}
		p := DFPoint{
			DF:         df,
			Acceptance: float64(accepted) / float64(setsPerPoint),
			CI:         stats.Wilson95(accepted, setsPerPoint),
		}
		if accepted > 0 {
			p.MeanPFHLO = pfhSum.Value() / float64(accepted)
		}
		out = append(out, p)
	}
	return out, nil
}

// FMSRobustness re-runs the Fig. 1 / Fig. 2 analysis over many random
// Table 4 instances and reports how often the published qualitative
// findings hold, quantifying how representative the paper's single random
// draw is.
type FMSRobustness struct {
	// Instances is the number of random Table 4 draws analyzed.
	Instances int
	// ProfilesMatch counts instances whose minimal re-execution profiles
	// are the published n_HI = 3, n_LO = 2.
	ProfilesMatch int
	// KillUncertifiable counts instances where FT-S with killing fails —
	// the paper's central claim that level C tasks cannot be killed.
	KillUncertifiable int
	// DegradeCertifiable counts instances where FT-S with degradation
	// (df = 6) succeeds.
	DegradeCertifiable int
	// StoryHolds counts instances exhibiting the full published story:
	// killing fails AND degradation succeeds.
	StoryHolds int
}

// RunFMSRobustness analyzes n random FMS instances.
func RunFMSRobustness(n int, seed int64) (FMSRobustness, error) {
	if n < 1 {
		return FMSRobustness{}, fmt.Errorf("expt: need at least one instance")
	}
	cfg := safety.Config{OperationHours: gen.FMSOperationHours, AssumeFullWCET: true}
	r := FMSRobustness{Instances: n}
	// Instances are independent: evaluate them across Workers() goroutines
	// into per-index verdicts, then count serially.
	type verdict struct{ profiles, killFail, degOK bool }
	verdicts := make([]verdict, n)
	err := ForEach(n, func(i int) error {
		s := gen.FMSAt(seed + int64(i))
		hi := s.ByClass(criticality.HI)
		lo := s.ByClass(criticality.LO)
		nHI, err1 := cfg.MinReexecProfile(hi, s.Dual().Requirement(criticality.HI))
		nLO, err2 := cfg.MinReexecProfile(lo, s.Dual().Requirement(criticality.LO))
		verdicts[i].profiles = err1 == nil && err2 == nil && nHI == 3 && nLO == 2
		kill, err := core.FTEDFVD(s, cfg)
		if err != nil {
			return err
		}
		deg, err := core.FTEDFVDDegrade(s, cfg, gen.FMSDegradeFactor)
		if err != nil {
			return err
		}
		verdicts[i].killFail = !kill.OK
		verdicts[i].degOK = deg.OK
		return nil
	})
	if err != nil {
		return FMSRobustness{}, err
	}
	for _, v := range verdicts {
		if v.profiles {
			r.ProfilesMatch++
		}
		if v.killFail {
			r.KillUncertifiable++
		}
		if v.degOK {
			r.DegradeCertifiable++
		}
		if v.killFail && v.degOK {
			r.StoryHolds++
		}
	}
	return r, nil
}

// String summarizes the robustness study.
func (r FMSRobustness) String() string {
	pct := func(k int) float64 { return 100 * float64(k) / float64(r.Instances) }
	return fmt.Sprintf("over %d Table 4 instances: profiles (3,2) %.0f%%, killing uncertifiable %.0f%%, degradation certifiable %.0f%%, full story %.0f%%",
		r.Instances, pct(r.ProfilesMatch), pct(r.KillUncertifiable), pct(r.DegradeCertifiable), pct(r.StoryHolds))
}

// OSPoint is one operation-duration value of the OS sweep.
type OSPoint struct {
	// Hours is the operation duration OS.
	Hours int
	// PFHLOKill is the killing bound pfh(LO) of eq. (5) at this OS.
	PFHLOKill float64
	// PFHLODegrade is the degradation bound of eq. (7).
	PFHLODegrade float64
	// KillCertifiable and DegradeCertifiable report whether FT-S
	// succeeds at this OS in each mode.
	KillCertifiable, DegradeCertifiable bool
}

// OSSweep measures how the operation duration OS affects certifiability
// on a fixed FMS instance: the killing bound of eq. (5) accumulates kill
// probability over the whole mission (R(t) falls with t), so longer
// missions are strictly harder to certify under killing — an effect the
// paper fixes at OS = 10 without exploring. The adaptation profile is
// held at n′_HI = 2 (the largest schedulable value on the calibrated
// instances).
func OSSweep(s *task.Set, hours []int) ([]OSPoint, error) {
	if len(hours) == 0 {
		return nil, fmt.Errorf("expt: need at least one OS value")
	}
	for _, h := range hours {
		if h < 1 {
			return nil, fmt.Errorf("expt: OS must be >= 1 hour, got %d", h)
		}
	}
	// Each OS value is an independent analysis (its own safety config, so
	// no adaptation cache is shared across points): fan out by index.
	out := make([]OSPoint, len(hours))
	err := ForEach(len(hours), func(idx int) error {
		h := hours[idx]
		cfg := safety.Config{OperationHours: h, AssumeFullWCET: true}
		hi := s.ByClass(criticality.HI)
		lo := s.ByClass(criticality.LO)
		nLO, err := cfg.MinReexecProfile(lo, s.Dual().Requirement(criticality.LO))
		if err != nil {
			return err
		}
		adapt, err := safety.NewUniformAdaptation(cfg, hi, 2)
		if err != nil {
			return err
		}
		p := OSPoint{
			Hours:        h,
			PFHLOKill:    cfg.KillingPFHLOUniform(lo, nLO, adapt),
			PFHLODegrade: cfg.DegradationPFHLOUniform(lo, nLO, adapt, gen.FMSDegradeFactor),
		}
		kill, err := core.FTEDFVD(s, cfg)
		if err != nil {
			return err
		}
		p.KillCertifiable = kill.OK
		deg, err := core.FTEDFVDDegrade(s, cfg, gen.FMSDegradeFactor)
		if err != nil {
			return err
		}
		p.DegradeCertifiable = deg.OK
		out[idx] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PHIPoint is one HI-task-share value of the P_HI sweep.
type PHIPoint struct {
	// PHI is the probability that a generated task is HI criticality.
	PHI float64
	// Baseline and Adapted are acceptance ratios as in Fig. 3.
	Baseline, Adapted float64
	// Gap is Adapted − Baseline: how much the adaptation mechanism buys.
	Gap float64
}

// PHISweep varies the HI-task share the paper fixes at 0.2: with few HI
// tasks there is little to re-execute (baseline already accepts); with
// many, killing the shrinking LO share stops paying. The adaptation gain
// peaks in between.
func PHISweep(mode safety.AdaptMode, df float64, u, failProb float64, phis []float64, setsPerPoint int, seed int64) ([]PHIPoint, error) {
	if len(phis) == 0 || setsPerPoint < 1 {
		return nil, fmt.Errorf("expt: need P_HI values and sets per point")
	}
	out := make([]PHIPoint, 0, len(phis))
	for _, phi := range phis {
		if phi <= 0 || phi >= 1 {
			return nil, fmt.Errorf("expt: P_HI must be in (0,1), got %g", phi)
		}
		params := gen.PaperParams(criticality.LevelB, criticality.LevelD, u, failProb)
		params.PHI = phi
		type verdict struct{ base, adapt bool }
		verdicts := make([]verdict, setsPerPoint)
		err := ForEach(setsPerPoint, func(i int) error {
			rng := rand.New(rand.NewSource(seed + int64(i)))
			s, err := gen.TaskSet(rng, params)
			if err != nil {
				return nil // degenerate draw: rejected both ways
			}
			scfg := safety.DefaultConfig()
			dual := s.Dual()
			nHI, errHI := scfg.MinReexecProfile(s.ByClass(criticality.HI), dual.Requirement(criticality.HI))
			nLO, errLO := scfg.MinReexecProfile(s.ByClass(criticality.LO), dual.Requirement(criticality.LO))
			if errHI == nil && errLO == nil {
				verdicts[i].base = s.ScaledUtilization(criticality.HI, nHI)+s.ScaledUtilization(criticality.LO, nLO) <= 1
			}
			if verdicts[i].base {
				verdicts[i].adapt = true
				return nil
			}
			res, err := core.FTS(s, core.Options{Safety: scfg, Mode: mode, DF: df})
			if err != nil {
				return err
			}
			verdicts[i].adapt = res.OK
			return nil
		})
		if err != nil {
			return nil, err
		}
		var nb, na int
		for _, v := range verdicts {
			if v.base {
				nb++
			}
			if v.adapt {
				na++
			}
		}
		p := PHIPoint{
			PHI:      phi,
			Baseline: float64(nb) / float64(setsPerPoint),
			Adapted:  float64(na) / float64(setsPerPoint),
		}
		p.Gap = p.Adapted - p.Baseline
		out = append(out, p)
	}
	return out, nil
}
