package expt

import (
	"testing"

	"repro/internal/gen"
)

// TestSimulationKeyMatchesLegacySeeding locks the keyed derivation to the
// frozen legacy chain: the workload stream of gen.SimulationKey{seed, pi,
// ui, i} must equal setSeed(pointSeed(seed, pi, ui), i) over a grid of
// coordinates. This is the contract that makes every committed result
// (seeded through the legacy chain) reproducible byte for byte by the
// keyed engines — single-process, pooled, and distributed alike.
func TestSimulationKeyMatchesLegacySeeding(t *testing.T) {
	for _, seed := range []int64{0, 1, 7, -3, 1 << 40} {
		for pi := 0; pi < 3; pi++ {
			for ui := 0; ui < 4; ui++ {
				point := pointSeed(seed, pi, ui)
				for i := 0; i < 8; i++ {
					want := setSeed(point, i)
					got := gen.SimulationKey{Seed: seed, Panel: pi, Point: ui, Set: i}.Stream(gen.SubsystemWorkload)
					if got != want {
						t.Fatalf("seed=%d pi=%d ui=%d set=%d: keyed stream %d != legacy %d",
							seed, pi, ui, i, got, want)
					}
				}
			}
		}
	}
}
