package expt

import (
	"reflect"
	"testing"

	"repro/internal/criticality"
	"repro/internal/safety"
)

// smallCampaign trims the paper campaign to a differential-test size:
// all four panels and both failure probabilities over utilizations
// spanning the feasible, transition and stressed regimes, so every
// verdict path (baseline accept, schedulability reject, single-probe
// accept and reject) is exercised against the reference.
func smallCampaign() CampaignConfig {
	cfg := PaperCampaign(24, 7)
	cfg.Utils = []float64{0.5, 0.65, 0.8, 0.9}
	return cfg
}

// TestCampaignMatchesFig3Ref is the campaign engine's acceptance test:
// every (panel, f) slice of the shared-workload sweep must equal the
// original allocating per-curve path run on the paired single-f config —
// same seeds, same draws, identical verdicts, so identical ratios.
func TestCampaignMatchesFig3Ref(t *testing.T) {
	cfg := smallCampaign()
	got, err := Campaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Panels) != len(cfg.Panels) {
		t.Fatalf("got %d panels, want %d", len(got.Panels), len(cfg.Panels))
	}
	for pi, p := range cfg.Panels {
		for fi, f := range cfg.FailProbs {
			want, err := Fig3Ref(cfg.PanelFig3Config(p, f))
			if err != nil {
				t.Fatalf("panel %s f=%g: Fig3Ref: %v", p.Name, f, err)
			}
			if !reflect.DeepEqual(got.Panels[pi].Curves[fi], want.Curves[0]) {
				t.Errorf("panel %s f=%g: campaign diverged from reference:\n got %+v\nwant %+v",
					p.Name, f, got.Panels[pi].Curves[fi], want.Curves[0])
			}
		}
	}
}

// TestCampaignMatchesFig3Pooled cross-checks against the pooled per-curve
// engine too, closing the triangle campaign = pooled = ref.
func TestCampaignMatchesFig3Pooled(t *testing.T) {
	cfg := smallCampaign()
	got, err := Campaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for pi, p := range cfg.Panels {
		for fi, f := range cfg.FailProbs {
			want, err := Fig3(cfg.PanelFig3Config(p, f))
			if err != nil {
				t.Fatalf("panel %s f=%g: Fig3: %v", p.Name, f, err)
			}
			if !reflect.DeepEqual(got.Panels[pi].Curves[fi], want.Curves[0]) {
				t.Errorf("panel %s f=%g: campaign diverged from pooled engine:\n got %+v\nwant %+v",
					p.Name, f, got.Panels[pi].Curves[fi], want.Curves[0])
			}
		}
	}
}

// TestCampaignWorkerInvariance checks the determinism contract: the whole
// figure is byte-identical under FTMC_WORKERS = 1 and 4, because every
// (set, config) verdict depends only on the set's seed and the config,
// never on which worker evaluates it or what it evaluated before.
func TestCampaignWorkerInvariance(t *testing.T) {
	cfg := smallCampaign()
	var base CampaignResult
	for i, w := range []string{"1", "4"} {
		t.Setenv("FTMC_WORKERS", w)
		res, err := Campaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = res
			continue
		}
		if !reflect.DeepEqual(res.Panels, base.Panels) {
			t.Fatalf("FTMC_WORKERS=%s changed the figure:\n got %+v\nwant %+v", w, res.Panels, base.Panels)
		}
	}
}

// TestCampaignValidate exercises the configuration error paths.
func TestCampaignValidate(t *testing.T) {
	good := smallCampaign()
	cases := []struct {
		name string
		mut  func(*CampaignConfig)
	}{
		{"no panels", func(c *CampaignConfig) { c.Panels = nil }},
		{"LO not below HI", func(c *CampaignConfig) { c.Panels[0].LO = criticality.LevelA }},
		{"degrade df", func(c *CampaignConfig) { c.Panels[2].DF = 1 }},
		{"no fail probs", func(c *CampaignConfig) { c.FailProbs = nil }},
		{"no utils", func(c *CampaignConfig) { c.Utils = nil }},
		{"no sets", func(c *CampaignConfig) { c.SetsPerPoint = 0 }},
	}
	for _, tc := range cases {
		cfg := good
		cfg.Panels = append([]CampaignPanel(nil), good.Panels...)
		tc.mut(&cfg)
		if _, err := Campaign(cfg); err == nil {
			t.Errorf("%s: Campaign accepted an invalid config", tc.name)
		}
	}
}

// TestPaperCampaignShape pins the published figure's configuration: four
// panels 3a–3d matching PanelConfig, and both paper failure probabilities.
func TestPaperCampaignShape(t *testing.T) {
	cfg := PaperCampaign(500, 1)
	if len(cfg.Panels) != 4 {
		t.Fatalf("got %d panels, want 4", len(cfg.Panels))
	}
	for _, p := range cfg.Panels {
		want, err := PanelConfig(p.Name, 500, 1)
		if err != nil {
			t.Fatalf("panel %s: %v", p.Name, err)
		}
		if p.LO != want.LO || p.Mode != want.Mode || p.DF != want.DF {
			t.Errorf("panel %s: got (LO=%v mode=%v df=%g), want (LO=%v mode=%v df=%g)",
				p.Name, p.LO, p.Mode, p.DF, want.LO, want.Mode, want.DF)
		}
		if p.Mode == safety.Degrade && p.DF <= 1 {
			t.Errorf("panel %s: degrade panel without a df", p.Name)
		}
	}
	if !reflect.DeepEqual(cfg.FailProbs, []float64{1e-3, 1e-5}) {
		t.Errorf("fail probs = %v, want paper's {1e-3, 1e-5}", cfg.FailProbs)
	}
}

// benchCampaign is the benchmark figure: the full 4-panel × 2-f
// cross-product at a bench-sized sample count.
func benchCampaign() CampaignConfig {
	cfg := PaperCampaign(16, 1)
	cfg.Utils = []float64{0.6, 0.85}
	return cfg
}

// BenchmarkCampaignFigure measures the shared-workload engine producing
// the whole figure in one pass.
func BenchmarkCampaignFigure(b *testing.B) {
	cfg := benchCampaign()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Campaign(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignPerCurve measures the same figure through the
// per-curve pooled path: one Fig3 run per (panel, f), redrawing the
// workloads for every configuration — the before side of the campaign
// engine's ≥3× target.
func BenchmarkCampaignPerCurve(b *testing.B) {
	cfg := benchCampaign()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, p := range cfg.Panels {
			for _, f := range cfg.FailProbs {
				if _, err := Fig3(cfg.PanelFig3Config(p, f)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}
