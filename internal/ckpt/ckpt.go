// Package ckpt models checkpoint-based fault tolerance as an alternative
// to the paper's whole-job re-execution — the technique of the paper's
// references [8, 13]. A job is split into k equal segments with a
// checkpoint (cost o) after each; a transient fault detected by the
// per-segment sanity check rolls back only the failed segment, which may
// retry up to m times.
//
// The certifiable worst case assumes every segment burns all m attempts:
//
//	L(k, m) = k·m·(C/k + o) = m·C + k·m·o,
//
// and a round fails when any segment exhausts its retries:
//
//	q(k, m) = 1 − (1 − f_s^m)^k,  f_s = 1 − e^{−λ(C/k + o)}.
//
// Against whole-job re-execution (k = 1, o = 0: L = n·C, q = f^n) the
// trade is exposure: shorter segments fail less per attempt, so the same
// safety may need fewer retries and less budget — until the overhead k·m·o
// and the k-fold failure opportunities eat the gain. Optimize searches
// that trade-off exactly.
package ckpt

import (
	"fmt"
	"math"

	"repro/internal/prob"
	"repro/internal/safety"
	"repro/internal/task"
	"repro/internal/timeunit"
)

// Params is one checkpointing configuration for a task.
type Params struct {
	// Segments is k ≥ 1; k = 1 with zero overhead degenerates to
	// whole-job re-execution.
	Segments int
	// Retries is m ≥ 1: attempts allowed per segment.
	Retries int
	// Overhead is the checkpoint save/restore cost o per segment attempt.
	Overhead timeunit.Time
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.Segments < 1 || p.Retries < 1 {
		return fmt.Errorf("ckpt: need k >= 1 and m >= 1, got k=%d m=%d", p.Segments, p.Retries)
	}
	if p.Overhead < 0 {
		return fmt.Errorf("ckpt: negative overhead %v", p.Overhead)
	}
	return nil
}

// RoundLength returns the certifiable worst-case budget L(k, m) for a job
// of WCET c: every segment retried m times, each attempt paying the
// segment plus its checkpoint. Segment sizes are rounded up to whole
// microseconds so the budget never under-approximates.
func (p Params) RoundLength(c timeunit.Time) timeunit.Time {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	segment := (c + timeunit.Time(p.Segments) - 1) / timeunit.Time(p.Segments)
	return timeunit.Time(p.Segments*p.Retries) * (segment + p.Overhead)
}

// SegmentFailProb returns f_s = 1 − e^{−λ·(C/k + o)} under the rate
// model.
func (p Params) SegmentFailProb(c timeunit.Time, rate safety.FaultRate) prob.P {
	segment := (c + timeunit.Time(p.Segments) - 1) / timeunit.Time(p.Segments)
	return rate.AttemptFailProb(segment + p.Overhead)
}

// RoundFailProb returns q(k, m) = 1 − (1 − f_s^m)^k.
func (p Params) RoundFailProb(c timeunit.Time, rate safety.FaultRate) prob.P {
	fs := p.SegmentFailProb(c, rate)
	if fs == 0 {
		return 0
	}
	if fs >= 1 {
		return 1
	}
	return prob.OneMinusExp(float64(p.Segments) * prob.Log1mPow(fs, p.Retries))
}

// Reexec returns the whole-job re-execution configuration with n
// attempts, for comparison: k = 1, m = n, o = 0.
func Reexec(n int) Params { return Params{Segments: 1, Retries: n} }

// Optimize searches k ∈ [1, maxK], m ∈ [1, maxM] for the configuration
// with the smallest worst-case budget whose round failure probability
// meets the target; ok = false when no configuration does. Ties prefer
// fewer segments (fewer moving parts).
func Optimize(c timeunit.Time, rate safety.FaultRate, overhead timeunit.Time, target float64, maxK, maxM int) (Params, bool) {
	var best Params
	bestLen := timeunit.Time(math.MaxInt64)
	found := false
	for k := 1; k <= maxK; k++ {
		for m := 1; m <= maxM; m++ {
			p := Params{Segments: k, Retries: m, Overhead: overhead}
			if p.RoundFailProb(c, rate) > target {
				continue
			}
			if l := p.RoundLength(c); l < bestLen {
				best, bestLen, found = p, l, true
			}
			break // larger m only costs more at the same k
		}
	}
	return best, found
}

// Comparison reports checkpointing against plain re-execution for one
// task at one fault rate and safety target.
type Comparison struct {
	// Task is the subject.
	Task task.Task
	// ReexecN is the minimal whole-job re-execution count meeting the
	// target (0 when none does within the cap).
	ReexecN int
	// ReexecBudget is n·C.
	ReexecBudget timeunit.Time
	// Ckpt is the optimized checkpoint configuration.
	Ckpt Params
	// CkptBudget is L(k, m).
	CkptBudget timeunit.Time
	// BudgetRatio is CkptBudget/ReexecBudget (< 1: checkpointing wins).
	BudgetRatio float64
}

// Compare sizes both mechanisms for a per-round failure target. maxK and
// maxM cap the search; overhead is the checkpoint cost.
func Compare(t task.Task, rate safety.FaultRate, overhead timeunit.Time, target float64, maxK, maxM int) (Comparison, error) {
	cmp := Comparison{Task: t}
	for n := 1; n <= maxM; n++ {
		if Reexec(n).RoundFailProb(t.WCET, rate) <= target {
			cmp.ReexecN = n
			cmp.ReexecBudget = t.WCET.MulSafe(n)
			break
		}
	}
	p, ok := Optimize(t.WCET, rate, overhead, target, maxK, maxM)
	if !ok {
		return cmp, fmt.Errorf("ckpt: no configuration within k<=%d, m<=%d meets %g", maxK, maxM, target)
	}
	cmp.Ckpt = p
	cmp.CkptBudget = p.RoundLength(t.WCET)
	if cmp.ReexecBudget > 0 {
		cmp.BudgetRatio = cmp.CkptBudget.Float() / cmp.ReexecBudget.Float()
	}
	return cmp, nil
}

// PFH evaluates the eq. (2)-style bound for tasks protected by
// checkpointing: Σ r_i(L_i, 1h) · q_i with the generalized round length,
// where r(L, t) = max(0, ⌊(t − L)/T⌋ + 1) exactly as in Lemma 3.1.
func PFH(tasks []task.Task, params []Params, rate safety.FaultRate) (float64, error) {
	if len(params) != len(tasks) {
		return 0, fmt.Errorf("ckpt: %d params for %d tasks", len(params), len(tasks))
	}
	var sum prob.KahanSum
	hour := timeunit.Hours(1)
	for i, t := range tasks {
		if err := params[i].Validate(); err != nil {
			return 0, err
		}
		l := params[i].RoundLength(t.WCET)
		num := hour - l
		if num < 0 {
			continue
		}
		r := num.DivFloor(t.Period) + 1
		if r < 0 {
			continue
		}
		sum.Add(float64(r) * params[i].RoundFailProb(t.WCET, rate))
	}
	return sum.Value(), nil
}
