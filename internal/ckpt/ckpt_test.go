package ckpt

import (
	"math"
	"testing"

	"repro/internal/criticality"
	"repro/internal/safety"
	"repro/internal/task"
	"repro/internal/timeunit"
)

func ms(v int64) timeunit.Time { return timeunit.Milliseconds(v) }

func TestParamsValidate(t *testing.T) {
	if err := (Params{Segments: 2, Retries: 3, Overhead: ms(1)}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	for _, p := range []Params{{0, 1, 0}, {1, 0, 0}, {1, 1, -1}} {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestRoundLength(t *testing.T) {
	// k=1, m=n, o=0 degenerates to n·C.
	if got := Reexec(3).RoundLength(ms(5)); got != ms(15) {
		t.Errorf("reexec round = %v, want 15ms", got)
	}
	// k=4, m=2, o=1ms, C=40ms: segment 10ms → 4·2·(10+1) = 88ms.
	p := Params{Segments: 4, Retries: 2, Overhead: ms(1)}
	if got := p.RoundLength(ms(40)); got != ms(88) {
		t.Errorf("round = %v, want 88ms", got)
	}
	// Non-dividing C rounds the segment up to whole µs: C=41ms, k=4 →
	// 10250 µs segments → 8·(10250+1000) = 90 ms.
	if got := p.RoundLength(ms(41)); got != ms(90) {
		t.Errorf("round = %v, want 90ms", got)
	}
}

func TestRoundFailProbDegeneratesToReexec(t *testing.T) {
	rate := safety.FaultRate{PerHour: 3600} // 1 fault per second of exposure
	c := ms(100)
	f := rate.AttemptFailProb(c)
	for n := 1; n <= 3; n++ {
		got := Reexec(n).RoundFailProb(c, rate)
		want := math.Pow(f, float64(n))
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("n=%d: q = %g, want f^n = %g", n, got, want)
		}
	}
}

func TestRoundFailProbBounds(t *testing.T) {
	rate := safety.FaultRate{PerHour: 10}
	p := Params{Segments: 3, Retries: 2, Overhead: ms(1)}
	q := p.RoundFailProb(ms(30), rate)
	if q <= 0 || q >= 1 {
		t.Errorf("q = %g out of (0,1)", q)
	}
	if z := p.RoundFailProb(ms(30), safety.FaultRate{PerHour: 0}); z != 0 {
		t.Errorf("zero rate: q = %g", z)
	}
}

// Splitting a long job reduces the per-attempt exposure: at equal m and
// negligible overhead, more segments give a round failure probability
// that is never dramatically worse and a budget that shrinks with the
// needed retries. Pin the flagship case: a 400 ms job at a rate where
// whole-job re-execution needs n = 3, checkpointing with k = 8 needs
// m = 2 at a fraction of the budget.
func TestCheckpointingBeatsReexecOnHeavyJobs(t *testing.T) {
	heavy := task.Task{Name: "plan", Period: ms(4000), Deadline: ms(4000),
		WCET: ms(400), Level: criticality.LevelB, FailProb: 0}
	rate := safety.FaultRate{PerHour: 90} // f(400ms) = 1%
	target := 1e-7
	cmp, err := Compare(heavy, rate, ms(1), target, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ReexecN == 0 {
		t.Fatal("re-execution should meet the target within the cap")
	}
	if cmp.ReexecN < 3 {
		t.Errorf("reexec n = %d, expected >= 3 at f = 1%%", cmp.ReexecN)
	}
	if cmp.Ckpt.Segments < 2 {
		t.Errorf("optimizer chose k = %d, expected segmentation to win", cmp.Ckpt.Segments)
	}
	if cmp.BudgetRatio >= 1 {
		t.Errorf("checkpointing budget ratio = %.2f, expected < 1 (budget %v vs %v)",
			cmp.BudgetRatio, cmp.CkptBudget, cmp.ReexecBudget)
	}
	// The chosen configuration really meets the target.
	if q := cmp.Ckpt.RoundFailProb(heavy.WCET, rate); q > target {
		t.Errorf("optimized q = %g > target %g", q, target)
	}
}

// With heavy overhead, segmentation stops paying and the optimizer falls
// back to few segments.
func TestOptimizerRespectsOverhead(t *testing.T) {
	rate := safety.FaultRate{PerHour: 90}
	cheap, ok := Optimize(ms(400), rate, 0, 1e-7, 16, 8)
	if !ok {
		t.Fatal("no configuration at zero overhead")
	}
	costly, ok := Optimize(ms(400), rate, ms(50), 1e-7, 16, 8)
	if !ok {
		t.Fatal("no configuration at heavy overhead")
	}
	if costly.Segments > cheap.Segments {
		t.Errorf("overhead should discourage segmentation: %d > %d", costly.Segments, cheap.Segments)
	}
	if costly.RoundLength(ms(400)) < cheap.RoundLength(ms(400)) {
		t.Error("heavy overhead cannot shrink the budget")
	}
}

// Exhaustive cross-check: the optimizer's pick has the minimal budget
// among all feasible (k, m) in range.
func TestOptimizeIsExhaustivelyMinimal(t *testing.T) {
	rate := safety.FaultRate{PerHour: 360}
	c := ms(100)
	target := 1e-6
	best, ok := Optimize(c, rate, ms(2), target, 10, 6)
	if !ok {
		t.Fatal("no configuration found")
	}
	for k := 1; k <= 10; k++ {
		for m := 1; m <= 6; m++ {
			p := Params{Segments: k, Retries: m, Overhead: ms(2)}
			if p.RoundFailProb(c, rate) > target {
				continue
			}
			if p.RoundLength(c) < best.RoundLength(c) {
				t.Fatalf("optimizer missed k=%d m=%d (budget %v < %v)",
					k, m, p.RoundLength(c), best.RoundLength(c))
			}
		}
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	// A rate so hot nothing in range meets 1e-9.
	rate := safety.FaultRate{PerHour: 3.6e6}
	if _, ok := Optimize(ms(100), rate, 0, 1e-9, 4, 2); ok {
		t.Error("expected infeasibility")
	}
	if _, err := Compare(task.Task{WCET: ms(100), Period: ms(200)}, rate, 0, 1e-9, 4, 2); err == nil {
		t.Error("Compare should propagate infeasibility")
	}
}

func TestPFH(t *testing.T) {
	rate := safety.FaultRate{PerHour: 90}
	tasks := []task.Task{
		{Name: "a", Period: ms(100), Deadline: ms(100), WCET: ms(10), Level: criticality.LevelB},
		{Name: "b", Period: ms(4000), Deadline: ms(4000), WCET: ms(400), Level: criticality.LevelB},
	}
	params := []Params{Reexec(2), {Segments: 8, Retries: 2, Overhead: ms(1)}}
	got, err := PFH(tasks, params, rate)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 {
		t.Errorf("pfh = %g", got)
	}
	// Consistency with the safety package for the pure re-execution task:
	// give task b a negligible contribution and compare task a's share.
	onlyA, err := PFH(tasks[:1], params[:1], rate)
	if err != nil {
		t.Fatal(err)
	}
	scfg := safety.DefaultConfig()
	ta := tasks[0]
	ta.FailProb = rate.AttemptFailProb(ta.WCET)
	want := scfg.PlainPFHUniform([]task.Task{ta}, 2)
	if math.Abs(onlyA-want)/want > 1e-9 {
		t.Errorf("pfh(a) = %g, safety package says %g", onlyA, want)
	}
	if _, err := PFH(tasks, params[:1], rate); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PFH(tasks, []Params{{}, {}}, rate); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestRoundLengthPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Params{}.RoundLength(ms(1))
}
