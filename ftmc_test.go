package ftmc

import (
	"math"
	"math/rand"
	"testing"
)

// example31 builds the paper's Example 3.1 through the public API.
func example31() *Set {
	mk := func(name string, T, C int64, l Level) Task {
		return Task{Name: name, Period: Milliseconds(T), Deadline: Milliseconds(T),
			WCET: Milliseconds(C), Level: l, FailProb: 1e-5}
	}
	return MustNewSet([]Task{
		mk("τ1", 60, 5, LevelB),
		mk("τ2", 25, 4, LevelB),
		mk("τ3", 40, 7, LevelD),
		mk("τ4", 90, 6, LevelD),
		mk("τ5", 70, 8, LevelD),
	})
}

// The full public-API walkthrough of the paper's running example.
func TestPublicAPIExample31(t *testing.T) {
	s := example31()
	res, err := AnalyzeEDFVD(s, DefaultSafetyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("expected success: %v", res)
	}
	if res.Profiles != (Profiles{NHI: 3, NLO: 1, NPrime: 2}) {
		t.Fatalf("profiles = %v", res.Profiles)
	}
	if !EDFVD.Schedulable(res.Converted) {
		t.Error("converted set must pass EDF-VD")
	}
	if EDF.Schedulable(res.Converted) {
		t.Error("worst-case EDF baseline must reject (U = 1.086)")
	}

	// The runtime validates the verdict: drive every HI job to its LO
	// budget, no deadline misses.
	cfg := SimConfig{
		Set: s, NHI: res.Profiles.NHI, NLO: res.Profiles.NLO, NPrime: res.Profiles.NPrime,
		Mode: Kill, Policy: PolicyEDFVD, Horizon: 10 * Second,
	}
	stats, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeadlineMisses(HI)+stats.DeadlineMisses(LO) != 0 {
		t.Errorf("deadline misses in fault-free run: %v", stats)
	}
}

func TestPublicAPITimeHelpers(t *testing.T) {
	if Milliseconds(25) != 25*Millisecond || Hours(1) != Hour {
		t.Error("time constructors wrong")
	}
	v, err := ParseTime("25ms")
	if err != nil || v != Milliseconds(25) {
		t.Errorf("ParseTime = %v, %v", v, err)
	}
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond {
		t.Error("unit ratios wrong")
	}
}

func TestPublicAPILevels(t *testing.T) {
	if !LevelA.MoreCriticalThan(LevelB) || !LevelD.MoreCriticalThan(LevelE) {
		t.Error("level ordering wrong")
	}
	if LevelB.PFHRequirement() != 1e-7 {
		t.Error("Table 1 binding wrong")
	}
}

func TestPublicAPIConvertAndUMC(t *testing.T) {
	s := example31()
	p := Profiles{NHI: 3, NLO: 1, NPrime: 2}
	conv, err := Convert(s, p)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Len() != 5 {
		t.Errorf("converted %d tasks", conv.Len())
	}
	if got := UMC(s, 3, 1, 2, Kill, 0); math.Abs(got-0.99898) > 1e-4 {
		t.Errorf("UMC = %.5f, want ≈ 0.99898", got)
	}
}

func TestPublicAPISchedulabilityTests(t *testing.T) {
	s := example31()
	conv, _ := Convert(s, Profiles{NHI: 3, NLO: 1, NPrime: 2})
	for _, test := range []SchedulabilityTest{EDFVD, EDF, DM, SMC, AMCrtb, EDFVDDegrade(6)} {
		if test.Name() == "" {
			t.Error("unnamed test")
		}
		test.Schedulable(conv) // must not panic
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, err := RandomTaskSet(rng, PaperGenParams(LevelB, LevelD, 0.6, 1e-5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Utilization()-0.6) > 0.01 {
		t.Errorf("U = %g", s.Utilization())
	}
	if FMSAt(1).Len() != 11 || FMS(rng).Len() != 11 {
		t.Error("FMS must have 11 tasks")
	}
}

func TestPublicAPIFigures(t *testing.T) {
	f1, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Points) != 4 || f1.NHI != 3 {
		t.Errorf("Fig1 = %+v", f1)
	}
	f2, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if !f2.Points[1].Schedulable || f2.Points[2].Schedulable {
		t.Error("Fig2 crossing wrong")
	}
	f3, err := Fig3Panel("3a", 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Curves) != 2 {
		t.Errorf("Fig3 curves = %d", len(f3.Curves))
	}
	if _, err := Fig3Panel("bogus", 5, 1); err == nil {
		t.Error("expected panel error")
	}
}

func TestPublicAPIRandomFaultsSimulation(t *testing.T) {
	s := example31()
	probs := []float64{0.02, 0.02, 0.02, 0.02, 0.02}
	cfg := SimConfig{
		Set: s, NHI: 3, NLO: 1, NPrime: 2,
		Mode: Kill, Policy: PolicyEDFVD, Horizon: 20 * Second,
		Faults: RandomFaults(rand.New(rand.NewSource(9)), probs),
	}
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := sim.Run()
	if stats.DeadlineMisses(HI) != 0 {
		t.Errorf("HI misses under in-model faults: %v", stats)
	}
	var faulty int64
	for _, ts := range stats.PerTask {
		faulty += ts.FaultyAttempts
	}
	if faulty == 0 {
		t.Error("expected injected faults at f = 0.02 over 20 s")
	}
}
